// Package trace implements a VOV-style design trace (paper §II, [3]):
// instead of a flow planned a priori, the system records design activity
// as it happens, building a bipartite graph of data nodes and tool
// invocations. The trace supports the operations VOV is known for —
// out-of-date propagation when an input changes, and retracing (replaying
// the affected invocations in dependency order).
package trace

import (
	"fmt"
	"sort"
)

// Invocation is one recorded tool run with its data inputs and outputs.
type Invocation struct {
	ID      int
	Tool    string
	Inputs  []string
	Outputs []string
	// UpToDate is false when some transitive input changed after the
	// invocation ran.
	UpToDate bool
}

// Trace is the growing record of design activity.
type Trace struct {
	data        map[string]bool // known data nodes
	invocations []*Invocation
	producerOf  map[string]int   // data -> invocation ID
	consumersOf map[string][]int // data -> invocation IDs
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{
		data:        make(map[string]bool),
		producerOf:  make(map[string]int),
		consumersOf: make(map[string][]int),
	}
}

// AddData declares a data node (an input file the designer supplies).
// Declaring an existing node is a no-op.
func (t *Trace) AddData(name string) error {
	if name == "" {
		return fmt.Errorf("trace: empty data name")
	}
	t.data[name] = true
	return nil
}

// Record appends a tool invocation. Inputs must be known data nodes;
// outputs are created (an output may be re-produced by a later invocation,
// which then becomes its producer). Recording returns the invocation.
func (t *Trace) Record(tool string, inputs, outputs []string) (*Invocation, error) {
	if tool == "" {
		return nil, fmt.Errorf("trace: empty tool name")
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("trace: invocation of %s has no outputs", tool)
	}
	for _, in := range inputs {
		if !t.data[in] {
			return nil, fmt.Errorf("trace: input %q unknown; record or add it first", in)
		}
	}
	inv := &Invocation{
		ID: len(t.invocations), Tool: tool,
		Inputs:   append([]string(nil), inputs...),
		Outputs:  append([]string(nil), outputs...),
		UpToDate: true,
	}
	t.invocations = append(t.invocations, inv)
	for _, in := range inputs {
		t.consumersOf[in] = append(t.consumersOf[in], inv.ID)
	}
	for _, out := range outputs {
		if out == "" {
			return nil, fmt.Errorf("trace: empty output name")
		}
		t.data[out] = true
		t.producerOf[out] = inv.ID
	}
	return inv, nil
}

// Invocations returns the recorded invocations in order.
func (t *Trace) Invocations() []*Invocation {
	return append([]*Invocation(nil), t.invocations...)
}

// Data returns the known data nodes, sorted.
func (t *Trace) Data() []string {
	out := make([]string, 0, len(t.data))
	for d := range t.data {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Producer returns the invocation that currently produces a data node,
// or nil for designer-supplied data.
func (t *Trace) Producer(data string) *Invocation {
	id, ok := t.producerOf[data]
	if !ok {
		return nil
	}
	return t.invocations[id]
}

// MarkChanged declares that a data node changed (the designer edited an
// input). Every invocation downstream of it becomes out of date. The
// affected invocation IDs are returned in dependency order.
func (t *Trace) MarkChanged(data string) ([]int, error) {
	if !t.data[data] {
		return nil, fmt.Errorf("trace: unknown data %q", data)
	}
	seenInv := make(map[int]bool)
	var order []int
	var visitData func(d string)
	var visitInv func(id int)
	visitData = func(d string) {
		for _, id := range t.consumersOf[d] {
			visitInv(id)
		}
	}
	visitInv = func(id int) {
		if seenInv[id] {
			return
		}
		seenInv[id] = true
		t.invocations[id].UpToDate = false
		order = append(order, id)
		for _, out := range t.invocations[id].Outputs {
			// Only propagate through outputs this invocation still owns.
			if t.producerOf[out] == id {
				visitData(out)
			}
		}
	}
	visitData(data)
	sort.Ints(order)
	return order, nil
}

// Retrace re-runs the out-of-date invocations in ID (dependency) order
// using the supplied runner and marks them up to date again. It returns
// the re-run IDs.
func (t *Trace) Retrace(run func(inv *Invocation) error) ([]int, error) {
	if run == nil {
		return nil, fmt.Errorf("trace: nil runner")
	}
	var redone []int
	for _, inv := range t.invocations {
		if inv.UpToDate {
			continue
		}
		if err := run(inv); err != nil {
			return redone, fmt.Errorf("trace: retrace %s (#%d): %w", inv.Tool, inv.ID, err)
		}
		inv.UpToDate = true
		redone = append(redone, inv.ID)
	}
	return redone, nil
}

// OutOfDate lists the IDs of stale invocations.
func (t *Trace) OutOfDate() []int {
	var out []int
	for _, inv := range t.invocations {
		if !inv.UpToDate {
			out = append(out, inv.ID)
		}
	}
	return out
}
