// Package flow implements Level 2 of the four-level flow-management
// architecture: instantiations of Level 1 schema data linked together to
// form design-flow models.
//
// A Graph instantiates a task schema as a DAG of task nodes (one per
// activity) connected by data arcs. From a graph the designer extracts a
// task Tree that covers the scope of an intended task — running from the
// target data classes back to primary inputs — then binds concrete tool and
// data instances to the leaves. A bound tree is what the workflow manager
// plans (by simulating its execution) and executes (paper §IV.A).
package flow

import (
	"fmt"
	"sort"
	"strings"

	"flowsched/internal/schema"
)

// Node is a task node of a flow graph: one design activity, with the data
// classes it consumes and produces.
type Node struct {
	// Activity is the unique activity name (matches the schema rule).
	Activity string
	// Rule is the construction rule this node instantiates.
	Rule *schema.Rule
}

// Arc is a directed data dependency between two task nodes: From produces
// the data class Class which To consumes.
type Arc struct {
	From, To string // activity names
	Class    string // data class carried
}

// Graph is a design-flow model: the full DAG of activities of a schema.
type Graph struct {
	Schema *schema.Schema
	nodes  map[string]*Node
	order  []string // activity declaration order
	arcs   []Arc
	succ   map[string][]string // activity -> consumer activities
	pred   map[string][]string // activity -> producer activities
}

// FromSchema instantiates the flow graph of a validated schema.
func FromSchema(s *schema.Schema) (*Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	g := &Graph{
		Schema: s,
		nodes:  make(map[string]*Node),
		succ:   make(map[string][]string),
		pred:   make(map[string][]string),
	}
	for _, r := range s.Rules() {
		g.nodes[r.Activity] = &Node{Activity: r.Activity, Rule: r}
		g.order = append(g.order, r.Activity)
	}
	for _, r := range s.Rules() {
		for _, in := range r.Inputs {
			if p := s.Producer(in); p != nil {
				g.arcs = append(g.arcs, Arc{From: p.Activity, To: r.Activity, Class: in})
				g.succ[p.Activity] = append(g.succ[p.Activity], r.Activity)
				g.pred[r.Activity] = append(g.pred[r.Activity], p.Activity)
			}
		}
	}
	return g, nil
}

// Node returns the task node for an activity, or nil.
func (g *Graph) Node(activity string) *Node { return g.nodes[activity] }

// Nodes returns all task nodes in schema declaration order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, a := range g.order {
		out = append(out, g.nodes[a])
	}
	return out
}

// Arcs returns all data arcs.
func (g *Graph) Arcs() []Arc { return append([]Arc(nil), g.arcs...) }

// Predecessors returns the activities whose outputs the given activity
// consumes, in input order.
func (g *Graph) Predecessors(activity string) []string {
	return append([]string(nil), g.pred[activity]...)
}

// Successors returns the activities consuming the given activity's output.
func (g *Graph) Successors(activity string) []string {
	return append([]string(nil), g.succ[activity]...)
}

// Tree is an extracted task tree: the sub-DAG of a flow graph that covers
// the scope of an intended task, from target outputs back to primary
// inputs, plus the bindings the designer assigns to its leaves.
//
// Terminology follows the paper: "a user prepares a task for execution by
// first extracting a task tree that covers the scope of the intended task.
// Next, tools and input data are bound to the task by assigning unique tool
// or data instances to each of the leaf nodes of the tree."
type Tree struct {
	Graph   *Graph
	Targets []string // target data classes, as requested
	// activities in scope, in deterministic post order (producers first)
	post []string
	in   map[string]bool
	// leaves: data classes consumed in scope but not produced in scope
	leaves []string
	// bindings
	dataBind map[string]string // leaf data class -> data instance ref
	toolBind map[string]string // activity -> tool instance ref
}

// Extract builds the task tree covering the given target data classes. A
// target may be any data class produced within the flow. Extract follows
// input arcs transitively back to primary inputs.
func (g *Graph) Extract(targets ...string) (*Tree, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("flow: Extract needs at least one target data class")
	}
	in := make(map[string]bool)
	var visit func(class string) error
	visit = func(class string) error {
		r := g.Schema.Producer(class)
		if r == nil {
			if g.Schema.Class(class) == nil {
				return fmt.Errorf("flow: unknown data class %q", class)
			}
			return nil // primary input: leaf
		}
		if in[r.Activity] {
			return nil
		}
		in[r.Activity] = true
		for _, dep := range r.Inputs {
			if err := visit(dep); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tgt := range targets {
		c := g.Schema.Class(tgt)
		if c == nil {
			return nil, fmt.Errorf("flow: unknown target data class %q", tgt)
		}
		if c.Kind != schema.DataClass {
			return nil, fmt.Errorf("flow: target %q is a tool class", tgt)
		}
		if g.Schema.Producer(tgt) == nil {
			return nil, fmt.Errorf("flow: target %q is a primary input; nothing to execute", tgt)
		}
		if err := visit(tgt); err != nil {
			return nil, err
		}
	}
	t := &Tree{
		Graph:    g,
		Targets:  append([]string(nil), targets...),
		in:       in,
		dataBind: make(map[string]string),
		toolBind: make(map[string]string),
	}
	// Post order: schema topological order restricted to scope.
	topo, err := g.Schema.TopoRules()
	if err != nil {
		return nil, err
	}
	for _, r := range topo {
		if in[r.Activity] {
			t.post = append(t.post, r.Activity)
		}
	}
	// Leaves: input classes of in-scope activities whose producer is out of
	// scope (for trees extracted from a DAG, that means primary inputs).
	leafSet := make(map[string]bool)
	for _, a := range t.post {
		for _, inClass := range g.nodes[a].Rule.Inputs {
			p := g.Schema.Producer(inClass)
			if p == nil || !in[p.Activity] {
				leafSet[inClass] = true
			}
		}
	}
	t.leaves = make([]string, 0, len(leafSet))
	for c := range leafSet {
		t.leaves = append(t.leaves, c)
	}
	sort.Strings(t.leaves)
	return t, nil
}

// Activities returns the in-scope activities in post order (producers
// before consumers) — the traversal order Hercules uses for both schedule
// planning and execution.
func (t *Tree) Activities() []string { return append([]string(nil), t.post...) }

// Contains reports whether the activity is in the tree's scope.
func (t *Tree) Contains(activity string) bool { return t.in[activity] }

// Leaves returns the data classes that must be bound before execution.
func (t *Tree) Leaves() []string { return append([]string(nil), t.leaves...) }

// BindData assigns a concrete data instance reference to a leaf data class.
func (t *Tree) BindData(class, instanceRef string) error {
	found := false
	for _, l := range t.leaves {
		if l == class {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("flow: %q is not a leaf of this task tree (leaves: %v)", class, t.leaves)
	}
	if instanceRef == "" {
		return fmt.Errorf("flow: empty instance reference for leaf %q", class)
	}
	t.dataBind[class] = instanceRef
	return nil
}

// BindTool assigns a concrete tool instance reference to an activity.
func (t *Tree) BindTool(activity, instanceRef string) error {
	if !t.in[activity] {
		return fmt.Errorf("flow: activity %q is not in this task tree", activity)
	}
	if instanceRef == "" {
		return fmt.Errorf("flow: empty tool reference for activity %q", activity)
	}
	t.toolBind[activity] = instanceRef
	return nil
}

// DataBinding returns the instance bound to a leaf class ("" if unbound).
func (t *Tree) DataBinding(class string) string { return t.dataBind[class] }

// ToolBinding returns the tool instance bound to an activity ("" if
// unbound).
func (t *Tree) ToolBinding(activity string) string { return t.toolBind[activity] }

// Unbound returns the leaf classes and activities still missing bindings.
func (t *Tree) Unbound() (leaves, activities []string) {
	for _, l := range t.leaves {
		if t.dataBind[l] == "" {
			leaves = append(leaves, l)
		}
	}
	for _, a := range t.post {
		if t.toolBind[a] == "" {
			activities = append(activities, a)
		}
	}
	return leaves, activities
}

// CheckBound reports an error naming any unbound leaf or activity. A fully
// bound tree is "ready for execution" in the paper's terms. Schedule
// planning (simulated execution) does not require bindings.
func (t *Tree) CheckBound() error {
	leaves, acts := t.Unbound()
	if len(leaves) == 0 && len(acts) == 0 {
		return nil
	}
	var parts []string
	if len(leaves) > 0 {
		parts = append(parts, fmt.Sprintf("unbound data leaves %v", leaves))
	}
	if len(acts) > 0 {
		parts = append(parts, fmt.Sprintf("unbound tools for %v", acts))
	}
	return fmt.Errorf("flow: task tree not ready: %s", strings.Join(parts, "; "))
}

// String renders the tree scope compactly, e.g.
// "Tree(performance) = [Create Simulate]; leaves [stimuli]".
func (t *Tree) String() string {
	return fmt.Sprintf("Tree(%s) = %v; leaves %v",
		strings.Join(t.Targets, ","), t.post, t.leaves)
}
