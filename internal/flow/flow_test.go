package flow

import (
	"strings"
	"testing"
	"testing/quick"

	"flowsched/internal/schema"
)

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

const asic = `
schema asic
data rtl, tb, netlist, floorplan, layout, drcreport, timing
tool synthesizer, planner, router, checker, sta
rule Synthesize: netlist   <- synthesizer(rtl)
rule Floorplan:  floorplan <- planner(netlist)
rule Route:      layout    <- router(netlist, floorplan)
rule DRC:        drcreport <- checker(layout)
rule STA:        timing    <- sta(layout, tb)
`

func fig4Graph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromSchema(schema.MustParse(fig4))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func asicGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromSchema(schema.MustParse(asic))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromSchemaStructure(t *testing.T) {
	g := fig4Graph(t)
	if len(g.Nodes()) != 2 {
		t.Fatalf("nodes = %d, want 2", len(g.Nodes()))
	}
	arcs := g.Arcs()
	if len(arcs) != 1 {
		t.Fatalf("arcs = %v, want one Create->Simulate arc", arcs)
	}
	a := arcs[0]
	if a.From != "Create" || a.To != "Simulate" || a.Class != "netlist" {
		t.Fatalf("arc = %+v", a)
	}
	if got := g.Successors("Create"); len(got) != 1 || got[0] != "Simulate" {
		t.Fatalf("Successors(Create) = %v", got)
	}
	if got := g.Predecessors("Simulate"); len(got) != 1 || got[0] != "Create" {
		t.Fatalf("Predecessors(Simulate) = %v", got)
	}
}

func TestFromSchemaRejectsInvalid(t *testing.T) {
	s := schema.New("empty")
	if _, err := FromSchema(s); err == nil {
		t.Fatal("FromSchema accepted invalid schema")
	}
}

func TestExtractFullScope(t *testing.T) {
	g := fig4Graph(t)
	tr, err := g.Extract("performance")
	if err != nil {
		t.Fatal(err)
	}
	acts := tr.Activities()
	if len(acts) != 2 || acts[0] != "Create" || acts[1] != "Simulate" {
		t.Fatalf("Activities = %v, want [Create Simulate]", acts)
	}
	if leaves := tr.Leaves(); len(leaves) != 1 || leaves[0] != "stimuli" {
		t.Fatalf("Leaves = %v, want [stimuli]", leaves)
	}
	if !tr.Contains("Create") || tr.Contains("Nope") {
		t.Fatal("Contains misreports scope")
	}
}

func TestExtractPartialScope(t *testing.T) {
	g := asicGraph(t)
	tr, err := g.Extract("floorplan")
	if err != nil {
		t.Fatal(err)
	}
	acts := tr.Activities()
	if len(acts) != 2 || acts[0] != "Synthesize" || acts[1] != "Floorplan" {
		t.Fatalf("Activities = %v", acts)
	}
	if leaves := tr.Leaves(); len(leaves) != 1 || leaves[0] != "rtl" {
		t.Fatalf("Leaves = %v, want [rtl]", leaves)
	}
}

func TestExtractMultiTarget(t *testing.T) {
	g := asicGraph(t)
	tr, err := g.Extract("drcreport", "timing")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Activities()); got != 5 {
		t.Fatalf("Activities = %v, want all 5", tr.Activities())
	}
	leaves := tr.Leaves()
	if len(leaves) != 2 || leaves[0] != "rtl" || leaves[1] != "tb" {
		t.Fatalf("Leaves = %v, want [rtl tb]", leaves)
	}
}

func TestExtractSharedDependencyOnce(t *testing.T) {
	g := asicGraph(t)
	tr, err := g.Extract("layout")
	if err != nil {
		t.Fatal(err)
	}
	// netlist feeds both Floorplan and Route; Synthesize must appear once.
	count := 0
	for _, a := range tr.Activities() {
		if a == "Synthesize" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("Synthesize appears %d times in %v", count, tr.Activities())
	}
}

func TestExtractErrors(t *testing.T) {
	g := fig4Graph(t)
	cases := []struct {
		name   string
		target []string
		want   string
	}{
		{"no targets", nil, "at least one"},
		{"unknown class", []string{"nope"}, "unknown target"},
		{"tool class", []string{"editor"}, "tool class"},
		{"primary input", []string{"stimuli"}, "primary input"},
	}
	for _, tc := range cases {
		_, err := g.Extract(tc.target...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestBinding(t *testing.T) {
	g := fig4Graph(t)
	tr, _ := g.Extract("performance")
	if err := tr.CheckBound(); err == nil {
		t.Fatal("unbound tree reported ready")
	}
	if err := tr.BindData("stimuli", "stimuli@1"); err != nil {
		t.Fatal(err)
	}
	if err := tr.BindTool("Create", "editor#a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.BindTool("Simulate", "simulator#b"); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckBound(); err != nil {
		t.Fatalf("fully bound tree not ready: %v", err)
	}
	if got := tr.DataBinding("stimuli"); got != "stimuli@1" {
		t.Fatalf("DataBinding = %q", got)
	}
	if got := tr.ToolBinding("Simulate"); got != "simulator#b" {
		t.Fatalf("ToolBinding = %q", got)
	}
}

func TestBindingErrors(t *testing.T) {
	g := fig4Graph(t)
	tr, _ := g.Extract("performance")
	if err := tr.BindData("netlist", "x"); err == nil {
		t.Fatal("bound non-leaf class netlist")
	}
	if err := tr.BindData("stimuli", ""); err == nil {
		t.Fatal("bound empty data ref")
	}
	if err := tr.BindTool("Nope", "x"); err == nil {
		t.Fatal("bound tool to out-of-scope activity")
	}
	if err := tr.BindTool("Create", ""); err == nil {
		t.Fatal("bound empty tool ref")
	}
}

func TestUnbound(t *testing.T) {
	g := fig4Graph(t)
	tr, _ := g.Extract("performance")
	tr.BindTool("Create", "e#1")
	leaves, acts := tr.Unbound()
	if len(leaves) != 1 || leaves[0] != "stimuli" {
		t.Fatalf("unbound leaves = %v", leaves)
	}
	if len(acts) != 1 || acts[0] != "Simulate" {
		t.Fatalf("unbound activities = %v", acts)
	}
}

func TestTreeString(t *testing.T) {
	g := fig4Graph(t)
	tr, _ := g.Extract("performance")
	s := tr.String()
	for _, want := range []string{"performance", "Create", "Simulate", "stimuli"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

// Property: for random linear-chain schemas, extracting the last class
// always covers every activity and yields exactly the first class as leaf.
func TestExtractChainProperty(t *testing.T) {
	f := func(n uint8) bool {
		depth := int(n%10) + 1
		s := schema.New("chain")
		s.AddToolClass("t")
		prev := ""
		var last string
		for i := 0; i <= depth; i++ {
			name := "c" + string(rune('a'+i))
			s.AddDataClass(name)
			if i > 0 {
				if _, err := s.AddRule("A"+string(rune('a'+i)), name, "t", prev); err != nil {
					return false
				}
			}
			prev = name
			last = name
		}
		g, err := FromSchema(s)
		if err != nil {
			return false
		}
		tr, err := g.Extract(last)
		if err != nil {
			return false
		}
		return len(tr.Activities()) == depth &&
			len(tr.Leaves()) == 1 && tr.Leaves()[0] == "ca"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: post order respects every arc restricted to scope.
func TestPostOrderRespectsArcs(t *testing.T) {
	g := asicGraph(t)
	tr, err := g.Extract("drcreport", "timing")
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, a := range tr.Activities() {
		pos[a] = i
	}
	for _, arc := range g.Arcs() {
		pf, okf := pos[arc.From]
		pt, okt := pos[arc.To]
		if okf && okt && pf >= pt {
			t.Fatalf("arc %v violated in post order %v", arc, tr.Activities())
		}
	}
}
