package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"flowsched"
	"flowsched/internal/host"
)

// post performs one in-process POST against the server's handler.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	return postIfMatch(t, s, path, body, "")
}

// postIfMatch is post with an optional If-Match version header.
func postIfMatch(t *testing.T, s *Server, path, body, ifMatch string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// version reads the store version a response stamped.
func version(t *testing.T, rec *httptest.ResponseRecorder) uint64 {
	t.Helper()
	raw := rec.Header().Get("X-Flowsched-Version")
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		t.Fatalf("bad X-Flowsched-Version %q: %v", raw, err)
	}
	return v
}

// TestWriteRoutesMutateTheProject drives the happy path of each
// mutating route once and checks the write actually landed.
func TestWriteRoutesMutateTheProject(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})

	target := p.Now().Add(90 * 24 * time.Hour).Format(time.RFC3339)
	cases := []struct {
		path, body, want string
	}{
		{"/import?class=stimuli", "pulse 2", `"class": "stimuli"`},
		{"/plan?targets=performance&hours=6", "", `"planVersion"`},
		// After /plan: milestones attach to the current plan, and a
		// re-plan drops them.
		{"/milestone?name=tapeout&class=performance&target=" + target, "", `"milestone": "tapeout"`},
		{"/run?targets=performance", "", `"finished"`},
		{"/propagate", "", `"finish"`},
		{"/edit?spec=crunch=Simulate*0.5", "", `"applied": "crunch"`},
	}
	var last uint64
	for _, c := range cases {
		rec := post(t, s, c.path, c.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("POST %s = %d: %s", c.path, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), c.want) {
			t.Fatalf("POST %s body lacks %q:\n%s", c.path, c.want, rec.Body.String())
		}
		v := version(t, rec)
		if v <= last {
			t.Fatalf("POST %s left version at %d (previous %d): write did not commit", c.path, v, last)
		}
		last = v
	}
	if p.Version() != last {
		t.Fatalf("project at version %d, last response said %d", p.Version(), last)
	}
	// The milestone is visible on the read surface.
	if rec := get(t, s, "/milestones"); !strings.Contains(rec.Body.String(), "tapeout") {
		t.Fatalf("/milestones does not show the written milestone:\n%s", rec.Body.String())
	}
}

// TestWriteErrorMappingTable pins the write path's status mapping:
// transport misuse, stale versions, read-only mode, and quarantine
// each answer a distinct, structured error.
func TestWriteErrorMappingTable(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	cur := p.Version()

	t.Run("get_is_405", func(t *testing.T) {
		rec := get(t, s, "/milestone")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /milestone = %d, want 405", rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
			t.Fatalf("Allow = %q, want POST", allow)
		}
	})
	t.Run("malformed_is_400", func(t *testing.T) {
		for _, path := range []string{
			"/milestone",                       // missing name/class/target
			"/milestone?name=x&class=y&target=tuesday", // bad RFC3339
			"/complete",                        // missing activity
			"/import",                          // missing class
			"/plan?targets=performance&hours=0", // non-positive estimate
			"/edit",                            // missing spec
		} {
			if rec := post(t, s, path, ""); rec.Code != http.StatusBadRequest {
				t.Errorf("POST %s = %d, want 400: %s", path, rec.Code, rec.Body.String())
			}
		}
	})
	t.Run("bad_ifmatch_is_400", func(t *testing.T) {
		rec := postIfMatch(t, s, "/propagate", "", "banana")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("If-Match banana = %d, want 400", rec.Code)
		}
	})
	t.Run("stale_ifmatch_is_409_with_current_version", func(t *testing.T) {
		rec := postIfMatch(t, s, "/propagate", "", strconv.FormatUint(cur+100, 10))
		if rec.Code != http.StatusConflict {
			t.Fatalf("stale If-Match = %d, want 409: %s", rec.Code, rec.Body.String())
		}
		if v := version(t, rec); v != cur {
			t.Fatalf("conflict header version = %d, want current %d", v, cur)
		}
		var body struct {
			CurrentVersion *uint64 `json:"currentVersion"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.CurrentVersion == nil || *body.CurrentVersion != cur {
			t.Fatalf("conflict body currentVersion = %v, want %d", body.CurrentVersion, cur)
		}
		if p.Version() != cur {
			t.Fatalf("conflicted write mutated the store: %d -> %d", cur, p.Version())
		}
	})
	t.Run("quoted_ifmatch_accepted", func(t *testing.T) {
		rec := postIfMatch(t, s, "/propagate", "", fmt.Sprintf("%q", strconv.FormatUint(p.Version(), 10)))
		if rec.Code != http.StatusOK {
			t.Fatalf("quoted fresh If-Match = %d, want 200: %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("readonly_is_403", func(t *testing.T) {
		ro := New(newTracked(t), Options{ReadOnly: true})
		for _, path := range []string{"/propagate", "/fork", "/schedules?kind=daily&action=propagate"} {
			rec := post(t, ro, path, "")
			if rec.Code != http.StatusForbidden {
				t.Errorf("read-only POST %s = %d, want 403: %s", path, rec.Code, rec.Body.String())
			}
		}
	})
	t.Run("unknown_fork_is_404", func(t *testing.T) {
		if rec := post(t, s, "/propagate?fork=ghost", ""); rec.Code != http.StatusNotFound {
			t.Fatalf("write to unknown fork = %d, want 404", rec.Code)
		}
	})
}

// TestQuarantinedWriteAnswers503NamingTheSentinel pins satellite 3: a
// write against a quarantined durable project maps ErrQuarantined to
// 503 with structured JSON naming the sentinel — over the host's full
// HTTP dispatch, exactly as an operator's probe would see it.
func TestQuarantinedWriteAnswers503NamingTheSentinel(t *testing.T) {
	ffs := &toggleFS{}
	h, err := NewHost(host.Options{
		Root:    t.TempDir(),
		Persist: flowsched.PersistOptions{NoSync: true, FS: ffs},
		Project: flowsched.Options{Designer: "ewj"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())
	seedProject(t, h, "alpha")

	// Disk dies; the first write through HTTP both quarantines the
	// project and reports it.
	ffs.setFail(true)
	req := httptest.NewRequest(http.MethodPost, "/p/alpha/import?class=stimuli", strings.NewReader("lost"))
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on dead disk = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Quarantined bool   `json:"quarantined"`
		Sentinel    string `json:"sentinel"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Quarantined || body.Sentinel != "ErrQuarantined" {
		t.Fatalf("quarantine body = %+v, want quarantined=true sentinel=ErrQuarantined:\n%s",
			body, rec.Body.String())
	}

	// Subsequent writes keep answering 503, reads keep serving.
	req = httptest.NewRequest(http.MethodPost, "/p/alpha/propagate", nil)
	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write while quarantined = %d, want 503", rec.Code)
	}
	if rec := hostGet(t, h, "/p/alpha/status"); rec.Code != http.StatusOK {
		t.Fatalf("read while quarantined = %d, want 200", rec.Code)
	}
	// And the sanity check the mapping rests on: the error really is
	// the sentinel.
	hd, err := h.Projects().Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer hd.Release()
	werr := hd.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("still dead"))
		return err
	})
	if !errors.Is(werr, flowsched.ErrQuarantined) {
		t.Fatalf("direct write = %v, want ErrQuarantined", werr)
	}
}

// TestOCCConflictRetryFansOutExactlyOnce is the PR's acceptance pin: a
// stale If-Match answers 409 carrying the current version, the retried
// write at the fresh version succeeds, and its event reaches every
// live SSE subscriber exactly once with byte-identical payloads.
func TestOCCConflictRetryFansOutExactlyOnce(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.CloseStreams()

	// Three live streams, already past history.
	n := p.EventCount()
	const streams = 3
	readers := make([]*sseReader, streams)
	for i := range readers {
		res, sr := openSSE(t, ts, fmt.Sprintf("/events?stream=sse&since=%d", n), -1)
		defer res.Body.Close()
		readers[i] = sr
	}

	// Designer A read version v; designer B commits first.
	v := p.Version()
	if rec := post(t, s, "/milestone?name=race&class=performance&target="+
		p.Now().Add(24*time.Hour).Format(time.RFC3339), ""); rec.Code != http.StatusOK {
		t.Fatalf("interleaved write = %d: %s", rec.Code, rec.Body.String())
	}

	// A's write at the stale version: 409 + where the store actually is.
	rec := postIfMatch(t, s, "/import?class=stimuli", "occ retry", strconv.FormatUint(v, 10))
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale write = %d, want 409: %s", rec.Code, rec.Body.String())
	}
	fresh := version(t, rec)
	if fresh <= v {
		t.Fatalf("conflict reported version %d, want > %d", fresh, v)
	}

	// A retries at the reported version and wins.
	rec = postIfMatch(t, s, "/import?class=stimuli", "occ retry", strconv.FormatUint(fresh, 10))
	if rec.Code != http.StatusOK {
		t.Fatalf("retry at fresh version = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var imported struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &imported); err != nil || imported.ID == "" {
		t.Fatalf("bad import body: %s", rec.Body.String())
	}

	// The retried write's event lands on every stream exactly once,
	// byte-identical, and never the conflicted attempt.
	payloads := make([]string, streams)
	for i, sr := range readers {
		hits := 0
		timeout := time.After(5 * time.Second)
		frames := make(chan sseFrame)
		errc := make(chan error, 1)
		go func() {
			for {
				f, err := sr.next()
				if err != nil {
					errc <- err
					return
				}
				frames <- f
			}
		}()
	read:
		for {
			select {
			case f := <-frames:
				if strings.Contains(f.data, " as "+imported.ID+`"`) {
					hits++
					payloads[i] = fmt.Sprintf("id=%d %s", f.id, f.data)
					break read // stream stays open; one hit is the claim
				}
			case err := <-errc:
				t.Fatalf("stream %d: %v", i, err)
			case <-timeout:
				t.Fatalf("stream %d never saw the retried write (hits=%d)", i, hits)
			}
		}
	}
	for i := 1; i < streams; i++ {
		if payloads[i] != payloads[0] {
			t.Fatalf("fan-out not byte-identical:\nstream0: %s\nstream%d: %s", payloads[0], i, payloads[i])
		}
	}
}

// TestForkSessions: a designer branches the tracked project, mutates
// and reads the branch through ?fork=, and discards it — without the
// tracked project ever changing.
func TestForkSessions(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	base := p.Version()

	rec := post(t, s, "/fork?name=crunch", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /fork = %d: %s", rec.Code, rec.Body.String())
	}

	// Mutate the branch: milestone + re-plan.
	target := p.Now().Add(30 * 24 * time.Hour).Format(time.RFC3339)
	if rec := post(t, s, "/milestone?fork=crunch&name=branch-only&class=performance&target="+target, ""); rec.Code != http.StatusOK {
		t.Fatalf("fork write = %d: %s", rec.Code, rec.Body.String())
	}
	if p.Version() != base {
		t.Fatalf("fork write moved the tracked project: %d -> %d", base, p.Version())
	}

	// The branch's read surface sees it; the tracked one does not.
	if rec := get(t, s, "/milestones?fork=crunch"); !strings.Contains(rec.Body.String(), "branch-only") {
		t.Fatalf("fork read missing branch milestone:\n%s", rec.Body.String())
	}
	if rec := get(t, s, "/milestones"); strings.Contains(rec.Body.String(), "branch-only") {
		t.Fatalf("tracked read shows the fork's milestone:\n%s", rec.Body.String())
	}

	// Duplicate names refuse; the list names the session.
	if rec := post(t, s, "/fork?name=crunch", ""); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate fork = %d, want 409", rec.Code)
	}
	if rec := get(t, s, "/fork"); !strings.Contains(rec.Body.String(), "crunch") {
		t.Fatalf("fork list missing session:\n%s", rec.Body.String())
	}

	// Discard; the branch is gone from reads and writes.
	req := httptest.NewRequest(http.MethodDelete, "/fork?name=crunch", nil)
	del := httptest.NewRecorder()
	s.Handler().ServeHTTP(del, req)
	if del.Code != http.StatusOK {
		t.Fatalf("DELETE /fork = %d: %s", del.Code, del.Body.String())
	}
	if rec := get(t, s, "/milestones?fork=crunch"); rec.Code != http.StatusNotFound {
		t.Fatalf("read on discarded fork = %d, want 404", rec.Code)
	}
}

// TestForkLimit: the session budget answers 409 with the limit error,
// and freeing a slot restores service.
func TestForkLimit(t *testing.T) {
	s := New(newTracked(t), Options{MaxForks: 1})
	if rec := post(t, s, "/fork?name=a", ""); rec.Code != http.StatusOK {
		t.Fatalf("first fork = %d: %s", rec.Code, rec.Body.String())
	}
	rec := post(t, s, "/fork?name=b", "")
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "fork limit") {
		t.Fatalf("fork past limit = %d %s, want 409 naming the limit", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest(http.MethodDelete, "/fork?name=a", nil)
	del := httptest.NewRecorder()
	s.Handler().ServeHTTP(del, req)
	if del.Code != http.StatusOK {
		t.Fatalf("DELETE = %d", del.Code)
	}
	if rec := post(t, s, "/fork?name=b", ""); rec.Code != http.StatusOK {
		t.Fatalf("fork after free = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestSchedulesFireOnVirtualClockCross: a schedule fires when a write
// moves the virtual clock across its boundary — deterministically,
// because virtual time only advances when work executes.
func TestSchedulesFireOnVirtualClockCross(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})

	rec := post(t, s, "/schedules?kind=every&every=1h&action=propagate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /schedules = %d: %s", rec.Code, rec.Body.String())
	}
	var sc Schedule
	if err := json.Unmarshal(rec.Body.Bytes(), &sc); err != nil {
		t.Fatal(err)
	}
	if !sc.Next.After(p.Now()) {
		t.Fatalf("schedule next %s not after now %s", sc.Next, p.Now())
	}

	// A milestone write does not move the clock: nothing fires.
	if rec := post(t, s, "/milestone?name=idle&class=performance&target="+
		p.Now().Add(48*time.Hour).Format(time.RFC3339), ""); rec.Code != http.StatusOK {
		t.Fatalf("milestone = %d", rec.Code)
	}
	if got := scheduleByID(t, s, sc.ID); got.Fired != 0 {
		t.Fatalf("schedule fired %d times with the clock parked", got.Fired)
	}

	// Fresh stimuli plus a re-plan make the flow runnable again; the
	// run executes real work and carries the clock hours forward —
	// past the boundary.
	if rec := post(t, s, "/import?class=stimuli", "fresh vectors"); rec.Code != http.StatusOK {
		t.Fatalf("import = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, s, "/plan?targets=performance", ""); rec.Code != http.StatusOK {
		t.Fatalf("plan = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, s, "/run?targets=performance", ""); rec.Code != http.StatusOK {
		t.Fatalf("run = %d: %s", rec.Code, rec.Body.String())
	}
	got := scheduleByID(t, s, sc.ID)
	if got.Fired < 1 {
		t.Fatalf("schedule never fired; next %s, now %s", got.Next, p.Now())
	}
	if got.LastErr != "" {
		t.Fatalf("schedule fire failed: %s", got.LastErr)
	}
	// Catch-up collapsed: however many periods the run spanned, the
	// next fire is in the future, not a backlog.
	if !got.Next.After(p.Now()) {
		t.Fatalf("next fire %s not past now %s: backlog left behind", got.Next, p.Now())
	}

	// DELETE removes it.
	req := httptest.NewRequest(http.MethodDelete, fmt.Sprintf("/schedules?id=%d", sc.ID), nil)
	del := httptest.NewRecorder()
	s.Handler().ServeHTTP(del, req)
	if del.Code != http.StatusOK {
		t.Fatalf("DELETE /schedules = %d: %s", del.Code, del.Body.String())
	}
	if list := scheduleList(t, s); len(list) != 0 {
		t.Fatalf("schedules after delete: %+v", list)
	}
}

func scheduleList(t *testing.T, s *Server) []Schedule {
	t.Helper()
	rec := get(t, s, "/schedules")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /schedules = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Schedules []Schedule `json:"schedules"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body.Schedules
}

func scheduleByID(t *testing.T, s *Server, id int) Schedule {
	t.Helper()
	for _, sc := range scheduleList(t, s) {
		if sc.ID == id {
			return sc
		}
	}
	t.Fatalf("no schedule %d", id)
	return Schedule{}
}

// TestAddScheduleSpec pins the flowservd -schedule flag syntax.
func TestAddScheduleSpec(t *testing.T) {
	s := New(newTracked(t), Options{})
	for _, spec := range []string{"daily:run:performance", "every=4h:plan:performance:6", "weekly:propagate"} {
		if _, err := s.AddSchedule(spec); err != nil {
			t.Errorf("AddSchedule(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"daily", "sometimes:plan", "every:plan", "daily:dance"} {
		if _, err := s.AddSchedule(spec); err == nil {
			t.Errorf("AddSchedule(%q) accepted a bad spec", spec)
		}
	}
}
