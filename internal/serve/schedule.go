package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowsched"
	"flowsched/internal/obs"
)

// Virtual-time cron schedules: "re-plan the chip hourly", "run the
// regression flow weekly" — the Schedule/Hourly/Daily/Weekly shape of
// workflow schedulers, but evaluated against the project's *virtual*
// clock, not the wall. Virtual time only moves when work executes, so
// schedules fire deterministically: after every successful write the
// server checks whether the clock crossed a boundary and fires what
// came due, each firing a normal write (under the write lock, events
// on the stream, visible to every SSE subscriber). A fire that lands
// multiple periods late collapses the catch-up: it runs once and the
// next-fire instant advances past now — schedules describe cadence,
// not a backlog.
//
// Surface:
//
//	GET    /schedules                      list (with next virtual fire)
//	POST   /schedules?kind=daily&action=plan&targets=a,b&hours=8
//	DELETE /schedules?id=3
//
// kind: hourly | daily | weekly | every (with &every=4h30m)
// action: plan (re-plan targets at ?hours per activity),
//         run (tracked run; &parallel=true overlaps branches),
//         propagate (re-project the current plan for slips).

// Schedule is one virtual-time cron entry.
type Schedule struct {
	ID       int           `json:"id"`
	Kind     string        `json:"kind"`             // hourly|daily|weekly|every
	Every    time.Duration `json:"every,omitempty"`  // period for kind "every"
	Action   string        `json:"action"`           // plan|run|propagate
	Targets  []string      `json:"targets,omitempty"`
	Hours    int           `json:"hours,omitempty"`  // plan estimate per activity
	Parallel bool          `json:"parallel,omitempty"`
	Next     time.Time     `json:"next"`             // next virtual fire instant
	Fired    int           `json:"fired"`
	LastErr  string        `json:"lastError,omitempty"`
}

// period is the schedule's virtual cadence.
func (sc *Schedule) period() time.Duration {
	switch sc.Kind {
	case "hourly":
		return time.Hour
	case "daily":
		return 24 * time.Hour
	case "weekly":
		return 7 * 24 * time.Hour
	default:
		return sc.Every
	}
}

// scheduler owns the entries behind its own lock; fires run outside it
// (each under the project write lock).
type scheduler struct {
	mu   sync.Mutex
	m    map[int]*Schedule
	seq  int
	fires  *obs.CounterVec // serve_schedule_fires_total{action}
	errs   *obs.Counter    // serve_schedule_errors_total
	active *obs.Gauge      // serve_schedules
}

func newScheduler(reg *obs.Registry) *scheduler {
	return &scheduler{
		m:      make(map[int]*Schedule),
		fires:  reg.CounterVec("serve_schedule_fires_total", "action"),
		errs:   reg.Counter("serve_schedule_errors_total"),
		active: reg.Gauge("serve_schedules"),
	}
}

// parseSchedule builds a Schedule from query-style parameters; spec
// strings from the flowservd -schedule flag funnel through the same
// names.
func parseSchedule(get func(string) string, now time.Time) (*Schedule, error) {
	sc := &Schedule{
		Kind:   get("kind"),
		Action: get("action"),
		Hours:  8,
	}
	switch sc.Kind {
	case "hourly", "daily", "weekly":
	case "every":
		raw := get("every")
		if raw == "" {
			return nil, badRequest("kind=every needs &every=4h30m")
		}
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			return nil, badRequest("bad every %q: want a positive duration", raw)
		}
		sc.Every = d
	default:
		return nil, badRequest("bad kind %q: want hourly|daily|weekly|every", sc.Kind)
	}
	switch sc.Action {
	case "plan", "run":
		if t := get("targets"); t != "" {
			sc.Targets = strings.Split(t, ",")
		}
	case "propagate":
	default:
		return nil, badRequest("bad action %q: want plan|run|propagate", sc.Action)
	}
	if raw := get("hours"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return nil, badRequest("bad hours %q: want a positive integer", raw)
		}
		sc.Hours = n
	}
	if raw := get("parallel"); raw != "" {
		sc.Parallel = raw == "true" || raw == "1"
	}
	sc.Next = nextAligned(now, sc)
	return sc, nil
}

// nextAligned picks the first virtual fire after now: hourly and daily
// schedules align to the period boundary (top of the virtual hour /
// virtual midnight UTC), longer and custom periods simply count from
// creation.
func nextAligned(now time.Time, sc *Schedule) time.Time {
	p := sc.period()
	switch sc.Kind {
	case "hourly", "daily":
		return now.Truncate(p).Add(p)
	default:
		return now.Add(p)
	}
}

func (sd *scheduler) add(sc *Schedule) *Schedule {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	sd.seq++
	sc.ID = sd.seq
	sd.m[sc.ID] = sc
	sd.active.Set(int64(len(sd.m)))
	return sc
}

func (sd *scheduler) del(id int) bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if _, ok := sd.m[id]; !ok {
		return false
	}
	delete(sd.m, id)
	sd.active.Set(int64(len(sd.m)))
	return true
}

func (sd *scheduler) list() []Schedule {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	out := make([]Schedule, 0, len(sd.m))
	for _, sc := range sd.m {
		cp := *sc
		cp.Targets = append([]string(nil), sc.Targets...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// due returns the schedules whose next fire is at or before the
// virtual now, each at most once per sweep.
func (sd *scheduler) due(now time.Time) []*Schedule {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	var out []*Schedule
	for _, sc := range sd.m {
		if !sc.Next.After(now) {
			out = append(out, sc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// runDueSchedules fires every schedule the virtual clock has crossed.
// Called after each successful write; each fire is itself a write (and
// may advance the clock further — a run usually does), but one sweep
// fires each schedule at most once and pushes its next instant past
// the post-fire now, so sweeps terminate.
func (s *Server) runDueSchedules() {
	for _, sc := range s.sched.due(s.p.Now()) {
		err := s.doWrite(s.p, func(p *flowsched.Project) error { return fireSchedule(p, sc) })
		s.sched.mu.Lock()
		sc.Fired++
		if err != nil {
			sc.LastErr = err.Error()
			s.sched.errs.Inc()
		} else {
			sc.LastErr = ""
		}
		now := s.p.Now()
		next := sc.Next
		for !next.After(now) {
			next = next.Add(sc.period())
		}
		sc.Next = next
		s.sched.mu.Unlock()
		s.sched.fires.With(sc.Action).Inc()
	}
}

// fireSchedule performs one schedule's action under the write lock.
func fireSchedule(p *flowsched.Project, sc *Schedule) error {
	targets := sc.Targets
	if len(targets) == 0 {
		if pl := p.CurrentPlan(); pl != nil {
			targets = pl.Targets
		}
	}
	switch sc.Action {
	case "plan":
		if len(targets) == 0 {
			return fmt.Errorf("schedule %d: no targets and no plan to re-plan", sc.ID)
		}
		_, err := p.Plan(targets, flowsched.Fixed{Default: time.Duration(sc.Hours) * time.Hour}, flowsched.PlanOptions{})
		return err
	case "run":
		if len(targets) == 0 {
			return fmt.Errorf("schedule %d: no targets and no plan to run", sc.ID)
		}
		_, err := p.RunWith(targets, flowsched.RunOptions{AutoComplete: true, Parallel: sc.Parallel})
		return err
	case "propagate":
		_, err := p.Propagate()
		return err
	default:
		return fmt.Errorf("schedule %d: unknown action %q", sc.ID, sc.Action)
	}
}

// AddSchedule installs a schedule from a flag-style spec:
// "kind:action[:targets[:hours]]", with kind "every=4h" for custom
// periods — e.g. "daily:run:performance" or "every=4h:plan:chip:6".
func (s *Server) AddSchedule(spec string) (*Schedule, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("bad schedule %q: want kind:action[:targets[:hours]]", spec)
	}
	vals := map[string]string{"action": parts[1]}
	if k, v, ok := strings.Cut(parts[0], "="); ok {
		vals["kind"] = k
		vals["every"] = v
	} else {
		vals["kind"] = parts[0]
	}
	if len(parts) > 2 && parts[2] != "" {
		vals["targets"] = parts[2]
	}
	if len(parts) > 3 {
		vals["hours"] = parts[3]
	}
	sc, err := parseSchedule(func(k string) string { return vals[k] }, s.p.Now())
	if err != nil {
		return nil, fmt.Errorf("bad schedule %q: %w", spec, err)
	}
	return s.sched.add(sc), nil
}

// schedulesRoute is the schedule CRUD surface.
func (s *Server) schedulesRoute(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		body, ctype, err := jsonBody(struct {
			Now       time.Time  `json:"now"`
			Schedules []Schedule `json:"schedules"`
		}{s.p.Now(), s.sched.list()})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	case http.MethodPost:
		if s.opt.ReadOnly {
			s.writeError(w, r, "schedules", errReadOnly)
			return
		}
		q := r.URL.Query()
		sc, err := parseSchedule(q.Get, s.p.Now())
		if err != nil {
			s.writeError(w, r, "schedules", err)
			return
		}
		s.sched.add(sc)
		s.writes.With("schedules", "ok").Inc()
		body, ctype, merr := jsonBody(sc)
		if merr != nil {
			http.Error(w, merr.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	case http.MethodDelete:
		if s.opt.ReadOnly {
			s.writeError(w, r, "schedules", errReadOnly)
			return
		}
		id, err := qInt(r, "id", 0)
		if err != nil || id <= 0 {
			s.writeError(w, r, "schedules", badRequest("missing id: pass ?id=N"))
			return
		}
		if !s.sched.del(id) {
			s.writeError(w, r, "schedules", &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("no schedule %d", id)})
			return
		}
		s.writes.With("schedules", "ok").Inc()
		body, ctype, _ := jsonBody(struct {
			Deleted int `json:"deleted"`
		}{id})
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	default:
		w.Header().Set("Allow", "GET, POST, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
