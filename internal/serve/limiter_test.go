package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"flowsched/internal/obs"
)

func testLimiter(capacity int64, queue int) *limiter {
	return newLimiter(capacity, queue, obs.NewRegistry().Gauge("serve_queue_depth"))
}

func TestLimiterGrantsUpToCapacity(t *testing.T) {
	l := testLimiter(3, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.acquire(ctx, 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := l.acquire(ctx, 1); !errors.Is(err, errShedQueueFull) {
		t.Fatalf("over-capacity acquire with no queue = %v, want shed", err)
	}
	l.release(1)
	if err := l.acquire(ctx, 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterClampsOversizedWeight(t *testing.T) {
	l := testLimiter(4, 0)
	// heavyWeight exceeds capacity: the request must still be runnable.
	if err := l.acquire(context.Background(), heavyWeight); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	l.release(heavyWeight)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used != 0 {
		t.Fatalf("used = %d after clamped acquire/release, want 0", l.used)
	}
}

func TestLimiterFIFOAndCancelWhileQueued(t *testing.T) {
	l := testLimiter(1, 4)
	ctx := context.Background()
	if err := l.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// First waiter queues, then gives up.
	cctx, cancel := context.WithCancel(context.Background())
	gone := make(chan error, 1)
	go func() { gone <- l.acquire(cctx, 1) }()
	waitDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			l.mu.Lock()
			n := len(l.queue)
			l.mu.Unlock()
			if n == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitDepth(1)

	// Second waiter queues behind it.
	second := make(chan error, 1)
	go func() { second <- l.acquire(ctx, 1) }()
	waitDepth(2)

	cancel()
	if err := <-gone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter = %v, want context.Canceled", err)
	}
	waitDepth(1)

	// Releasing the original holder must grant the surviving waiter.
	l.release(1)
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never granted after release")
	}
	l.release(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used != 0 || len(l.queue) != 0 {
		t.Fatalf("limiter not drained: used=%d queue=%d", l.used, len(l.queue))
	}
}
