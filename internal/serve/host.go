package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"flowsched"
	"flowsched/internal/host"
	"flowsched/internal/obs"
)

// Host is the multi-tenant server: one process serving every project
// under a durable root. Routing is path-scoped — every single-project
// read surface is mounted under /p/{id}/ with identical semantics, so
// a client of the one-project server just prefixes its paths.
//
// Each request pins its project for the duration (a registry handle),
// so an eviction racing a slow read never tears the response: the
// pinned instance finishes serving from its snapshot, the WAL closes
// at the last release, and the next request re-loads from disk to the
// same store version.
//
// Per-project servers (mux, memo cache, fingerprint cache, request
// metrics) are built lazily on first touch and rebuilt whenever the
// registry hands back a different project instance (i.e. after an
// evict + re-load), so caches never serve a stale instance.
type Host struct {
	reg *host.Registry
	opt Options
	// hreg carries host-level metrics: the per-tenant request counter
	// and the registry's load/evict/resident families.
	hreg *obs.Registry
	mux  *http.ServeMux
	srv  *http.Server

	mu      sync.Mutex
	servers map[string]*projServer

	reqs     *obs.CounterVec // serve_requests_by_project_total{project}
	rejected *obs.Counter    // serve_host_rejected_total
	shed     *obs.CounterVec // serve_shed_total{route,reason} (tenant_quota sheds)

	// lim is the host-wide admission limiter, shared by every
	// per-project server: one budget bounds total in-flight work no
	// matter how many tenants are resident.
	lim *limiter
	// tb enforces per-tenant fair share in front of the shared limiter.
	tb *tenantBuckets

	// afterPin, when set, runs after a request pins its project and
	// before it is served — a test seam for racing evictions against
	// in-flight requests.
	afterPin func(id string)
}

// projServer binds a per-project Server to the project instance it was
// built over, so a re-loaded instance gets a fresh server (and fresh
// caches).
type projServer struct {
	p   *flowsched.Project
	srv *Server
}

// NewHost builds the multi-tenant server: it opens a project registry
// with hostOpt (wiring the host's metrics registry in when hostOpt.Obs
// is unset) and serves every project under hostOpt.Root. opt configures
// both the HTTP server and every per-project Server.
func NewHost(hostOpt host.Options, opt Options) (*Host, error) {
	if opt.Addr == "" {
		opt.Addr = ":8080"
	}
	if opt.ReadTimeout <= 0 {
		opt.ReadTimeout = 5 * time.Second
	}
	if opt.WriteTimeout <= 0 {
		opt.WriteTimeout = 2 * time.Minute
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 2 * time.Minute
	}
	hreg := obs.NewRegistry()
	if hostOpt.Obs == nil {
		hostOpt.Obs = obs.NewWith(hreg, nil)
	}
	reg, err := host.NewRegistry(hostOpt)
	if err != nil {
		return nil, err
	}
	h := &Host{
		reg: reg, opt: opt, hreg: hreg,
		mux:     http.NewServeMux(),
		servers: make(map[string]*projServer),
		reqs: hreg.BoundedCounterVec("serve_requests_by_project_total",
			obs.DefaultMaxSeries, "project"),
		rejected: hreg.Counter("serve_host_rejected_total"),
		shed:     hreg.CounterVec("serve_shed_total", "route", "reason"),
		tb:       newTenantBuckets(opt.TenantRate, opt.TenantBurst),
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
		h.opt.RetryAfter = opt.RetryAfter
	}
	if opt.MaxInFlight > 0 {
		qd := opt.QueueDepth
		if qd == 0 {
			qd = 2 * opt.MaxInFlight
		}
		h.lim = newLimiter(int64(opt.MaxInFlight), qd, hreg.Gauge("serve_queue_depth"))
	}
	h.mux.HandleFunc("/projects", h.projects)
	h.mux.HandleFunc("POST /p/{id}/reopen", h.reopen)
	h.mux.HandleFunc("/p/{id}/", h.dispatch)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/healthz", h.healthz)
	h.srv = &http.Server{
		Addr: opt.Addr, Handler: h.mux,
		ReadTimeout: opt.ReadTimeout, WriteTimeout: opt.WriteTimeout,
		IdleTimeout: opt.IdleTimeout,
	}
	return h, nil
}

// Projects returns the underlying registry (for seeding, tests, and
// operational tooling).
func (h *Host) Projects() *host.Registry { return h.reg }

// Handler returns the route handler (for tests and embedding).
func (h *Host) Handler() http.Handler { return h.mux }

// Registry returns the host-level metrics registry.
func (h *Host) Registry() *obs.Registry { return h.hreg }

// ListenAndServe serves until Shutdown (or a listener error).
func (h *Host) ListenAndServe() error { return h.srv.ListenAndServe() }

// Serve serves on an existing listener (Options.Addr is ignored).
func (h *Host) Serve(l net.Listener) error { return h.srv.Serve(l) }

// Shutdown is the graceful drain: the listener closes, in-flight
// requests complete (bounded by ctx), and then every resident project
// is checkpointed and its WAL closed — restart replays nothing.
func (h *Host) Shutdown(ctx context.Context) error {
	// End every project's SSE streams first: each live subscriber gets
	// a terminal frame and its handler returns, so the listener drain
	// below never waits on a parked stream.
	h.mu.Lock()
	for _, ps := range h.servers {
		ps.srv.CloseStreams()
	}
	h.mu.Unlock()
	err := h.srv.Shutdown(ctx)
	if cerr := h.reg.Close(); err == nil {
		err = cerr
	}
	return err
}

// dispatch routes /p/{id}/... to the project's server, pinning the
// project for the request's duration.
func (h *Host) dispatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !host.ValidID(id) {
		h.rejected.Inc()
		http.Error(w, fmt.Sprintf("invalid project id %q", id), http.StatusNotFound)
		return
	}
	if !h.tb.allow(id) {
		h.shed.With(routeOf(id, r), "tenant_quota").Inc()
		w.Header().Set("Retry-After", retryAfterValue(h.opt.RetryAfter))
		http.Error(w, fmt.Sprintf("project %q over its fair-share quota", id),
			http.StatusServiceUnavailable)
		return
	}
	hd, err := h.reg.Get(id)
	if err != nil {
		h.rejected.Inc()
		code := http.StatusNotFound
		if !strings.Contains(err.Error(), "unknown project") {
			code = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), code)
		return
	}
	defer hd.Release()
	if h.afterPin != nil {
		h.afterPin(id)
	}
	h.reqs.With(id).Inc()
	w.Header().Set("X-Flowsched-Project", id)
	s := h.serverFor(id, hd.Project())
	http.StripPrefix("/p/"+id, s.Handler()).ServeHTTP(w, r)
}

// serverFor returns the per-project server for this exact project
// instance, building one when the project was just loaded (or
// re-loaded after an eviction — instance identity is the cache key).
func (h *Host) serverFor(id string, p *flowsched.Project) *Server {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ps, ok := h.servers[id]; ok && ps.p == p {
		return ps.srv
	}
	opt := h.opt
	// All per-project servers draw from the host's one admission budget
	// (and its one queue-depth gauge) rather than each minting their own.
	opt.lim = h.lim
	// Writes go through the registry's per-project lock (Handle.Do),
	// not the sub-server's own mutex, so an HTTP write serializes with
	// checkpoints, drain, and any embedded writer sharing the registry.
	// The request already holds a pin, so this nested Get is a cheap
	// refcount bump on the resident instance.
	opt.writeVia = func(fn func(*flowsched.Project) error) error {
		hd, err := h.reg.Get(id)
		if err != nil {
			return err
		}
		defer hd.Release()
		return hd.Do(fn)
	}
	ps := &projServer{p: p, srv: New(p, opt)}
	h.servers[id] = ps
	return ps.srv
}

// routeOf extracts the per-project route from a /p/{id}/... path for
// shed-metric labeling ("/p/alpha/risk" → "risk").
func routeOf(id string, r *http.Request) string {
	rest := strings.TrimPrefix(r.URL.Path, "/p/"+id)
	rest = strings.TrimPrefix(rest, "/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "root"
	}
	return rest
}

// reopen evicts and re-loads a project, re-running clean-prefix WAL
// recovery — the operator path that lifts a disk-fault quarantine once
// the underlying storage is healthy again. Responds with the reloaded
// project's health.
func (h *Host) reopen(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !host.ValidID(id) {
		h.rejected.Inc()
		http.Error(w, fmt.Sprintf("invalid project id %q", id), http.StatusNotFound)
		return
	}
	hd, err := h.reg.Reopen(id)
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown project") {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	defer hd.Release()
	hl := hd.Health()
	body, ctype, err := jsonBody(struct {
		Project     string `json:"project"`
		Reopened    bool   `json:"reopened"`
		Quarantined bool   `json:"quarantined"`
		WALSeq      uint64 `json:"walSeq"`
	}{id, true, hl.Quarantined, hl.WALSeq})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// projects lists every project under the root, resident or not.
func (h *Host) projects(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	list, err := h.reg.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if list == nil {
		list = []host.ProjectInfo{}
	}
	body, ctype, err := jsonBody(struct {
		Projects []host.ProjectInfo `json:"projects"`
	}{list})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// metrics serves the host-level registry: per-tenant request counters
// and the project registry's load/evict/resident families. Per-project
// serving metrics live at /p/{id}/metrics.
func (h *Host) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, h.hreg.PromText())
}

// healthz aggregates project health across the root: "ok" only when no
// project — resident (live state) or on disk (quarantine marker from a
// wedged process) — is quarantined. Degraded hosts answer 503 with the
// quarantined ids, so one probe finds the tenants needing a reopen.
func (h *Host) healthz(w http.ResponseWriter, _ *http.Request) {
	list, err := h.reg.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resident := 0
	quarantined := []string{}
	for _, pi := range list {
		if pi.Resident {
			resident++
		}
		if pi.Quarantined {
			quarantined = append(quarantined, pi.ID)
		}
	}
	status, code := "ok", http.StatusOK
	if len(quarantined) > 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	body, ctype, err := jsonBody(struct {
		Status        string   `json:"status"`
		Projects      int      `json:"projects"`
		Resident      int      `json:"resident"`
		ResidentBytes int64    `json:"residentBytes"`
		Quarantined   []string `json:"quarantined,omitempty"`
	}{status, len(list), resident, h.reg.ResidentBytes(), quarantined})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(code)
	w.Write(body)
}
