package serve

import (
	"math"
	"sync"
	"time"
)

// tenantBuckets gives each project a token bucket so one hot tenant
// cannot monopolize the host: every request spends one token, tokens
// refill at rate per second up to burst. The map grows one entry per
// distinct project id ever served — bounded by the real tenant
// population, which host.Registry already bounds elsewhere.
type tenantBuckets struct {
	rate  float64
	burst float64
	now   func() time.Time // seam for deterministic tests

	mu sync.Mutex
	m  map[string]*tenantBucket
}

type tenantBucket struct {
	tokens float64
	last   time.Time
}

func newTenantBuckets(rate float64, burst int) *tenantBuckets {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &tenantBuckets{
		rate: rate, burst: float64(burst),
		now: time.Now,
		m:   make(map[string]*tenantBucket),
	}
}

// allow spends one token from id's bucket, reporting false when the
// tenant is over quota. New tenants start with a full bucket.
func (t *tenantBuckets) allow(id string) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	b := t.m[id]
	if b == nil {
		b = &tenantBucket{tokens: t.burst, last: now}
		t.m[id] = b
	} else {
		b.tokens = math.Min(t.burst, b.tokens+now.Sub(b.last).Seconds()*t.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
