package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"flowsched"
	"flowsched/internal/host"
)

// newHost builds a multi-tenant server over a temp root with fsync off
// and project observability on.
func newHost(t *testing.T, root string, opt Options) *Host {
	t.Helper()
	h, err := NewHost(host.Options{
		Root:    root,
		Persist: flowsched.PersistOptions{NoSync: true},
		Project: flowsched.Options{Designer: "ewj", Obs: flowsched.ObsOptions{Enabled: true}},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Shutdown(context.Background()) })
	return h
}

// seedProject creates a durable project with a plan and one tracked run
// through the host's registry, then releases it.
func seedProject(t *testing.T, h *Host, id string) {
	t.Helper()
	hd, err := h.Projects().Create(id, flowsched.Fig4Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer hd.Release()
	err = hd.Do(func(p *flowsched.Project) error {
		if _, err := p.Import("stimuli", []byte("pulse "+id)); err != nil {
			return err
		}
		if _, err := p.Plan([]string{"performance"}, flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
			return err
		}
		_, err := p.Run([]string{"performance"}, true)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func hostGet(t *testing.T, h *Host, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, req)
	return rec
}

func TestHostRoutesEveryReadSurfacePerProject(t *testing.T) {
	h := newHost(t, t.TempDir(), Options{})
	seedProject(t, h, "alpha")
	seedProject(t, h, "beta")

	cases := []struct{ path, want string }{
		{"/p/alpha/version", `"storeVersion"`},
		{"/p/alpha/status", `"activities"`},
		{"/p/alpha/gantt", "Create"},
		{"/p/alpha/dashboard", "project dashboard"},
		{"/p/alpha/analyze", `"CriticalPath"`},
		{"/p/alpha/risk?trials=50&seed=7", `"p95"`},
		{"/p/alpha/events?since=0", `"events"`},
		{"/p/alpha/healthz", `"status": "ok"`},
		{"/p/beta/status", `"activities"`},
	}
	for _, c := range cases {
		rec := hostGet(t, h, c.path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", c.path, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), c.want) {
			t.Fatalf("GET %s body missing %q:\n%s", c.path, c.want, rec.Body.String())
		}
		if got := rec.Header().Get("X-Flowsched-Project"); !strings.HasPrefix(c.path, "/p/"+got+"/") {
			t.Fatalf("GET %s: X-Flowsched-Project = %q", c.path, got)
		}
	}

	// The two tenants are distinct stores with distinct snapshots.
	va := hostGet(t, h, "/p/alpha/version")
	vb := hostGet(t, h, "/p/beta/version")
	if va.Header().Get("X-Flowsched-Version") == "" ||
		va.Body.String() == "" || vb.Body.String() == "" {
		t.Fatal("missing snapshot identity")
	}
}

func TestHostProjectsListing(t *testing.T) {
	h := newHost(t, t.TempDir(), Options{})
	seedProject(t, h, "alpha")
	seedProject(t, h, "beta")
	if err := h.Projects().Evict("beta"); err != nil {
		t.Fatal(err)
	}
	rec := hostGet(t, h, "/projects")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /projects = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"alpha"`, `"beta"`, `"resident": true`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/projects missing %s:\n%s", want, body)
		}
	}
}

func TestHostUnknownAndInvalidProjects(t *testing.T) {
	h := newHost(t, t.TempDir(), Options{})
	for _, path := range []string{"/p/nope/status", "/p/.dot/status"} {
		if rec := hostGet(t, h, path); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, rec.Code)
		}
	}
	if v := h.rejected.Value(); v != 2 {
		t.Fatalf("serve_host_rejected_total = %d, want 2", v)
	}
}

func TestHostPerTenantRequestMetrics(t *testing.T) {
	h := newHost(t, t.TempDir(), Options{})
	seedProject(t, h, "alpha")
	hostGet(t, h, "/p/alpha/version")
	hostGet(t, h, "/p/alpha/status")
	rec := hostGet(t, h, "/metrics")
	body := rec.Body.String()
	if !strings.Contains(body, `serve_requests_by_project_total{project="alpha"} 2`) {
		t.Fatalf("host metrics missing per-tenant counter:\n%s", body)
	}
	for _, fam := range []string{"host_project_loads_total", "host_resident_projects"} {
		if !strings.Contains(body, fam) {
			t.Fatalf("host metrics missing %s", fam)
		}
	}
	if errs := h.Registry().Lint(); len(errs) != 0 {
		t.Fatalf("host metric lint: %v", errs)
	}
}

// TestHostEvictionMidRequestPinnedViewCompletes is the registry/serving
// integration contract: a request that pinned its project survives a
// concurrent eviction (the response completes from its snapshot), and
// the subsequent request re-loads from disk and reports the same
// X-Flowsched-Version.
func TestHostEvictionMidRequestPinnedViewCompletes(t *testing.T) {
	h := newHost(t, t.TempDir(), Options{})
	seedProject(t, h, "alpha")

	evicted := false
	h.afterPin = func(id string) {
		if !evicted {
			evicted = true
			// Races the in-flight request: the entry leaves the registry
			// now, but the pin defers the WAL close past the response.
			if err := h.Projects().Evict(id); err != nil {
				t.Errorf("evict: %v", err)
			}
		}
	}
	rec := hostGet(t, h, "/p/alpha/risk?trials=50&seed=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("pinned request failed after eviction: %d %s", rec.Code, rec.Body.String())
	}
	v1 := rec.Header().Get("X-Flowsched-Version")

	h.afterPin = nil
	rec2 := hostGet(t, h, "/p/alpha/risk?trials=50&seed=7")
	if rec2.Code != http.StatusOK {
		t.Fatalf("re-load request failed: %d %s", rec2.Code, rec2.Body.String())
	}
	if v2 := rec2.Header().Get("X-Flowsched-Version"); v2 != v1 {
		t.Fatalf("re-loaded project serves version %s, evicted served %s", v2, v1)
	}
	if rec.Body.String() != rec2.Body.String() {
		t.Fatal("risk summary changed across evict + re-load")
	}
}

var trialsRe = regexp.MustCompile(`(?m)^monte_trials_total (\d+)$`)

func trialsOf(t *testing.T, h *Host, id string) int {
	t.Helper()
	rec := hostGet(t, h, "/p/"+id+"/metrics")
	m := trialsRe.FindStringSubmatch(rec.Body.String())
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestHostCrashRecoveryAcceptance is the PR's acceptance scenario:
// kill -9 mid-tracked-run (no Close — only the WAL survives), restart
// the host, and the project comes back bit-identical — same store
// version, same risk fingerprint — and a warm /risk across an
// unrelated store advance re-runs zero trials (fingerprint tier hit,
// monte_trials_total flat).
func TestHostCrashRecoveryAcceptance(t *testing.T) {
	root := t.TempDir()

	// "Process one": drive a tracked project and crash without Close.
	p, err := flowsched.Open(root+"/alpha", flowsched.Fig4Schema,
		flowsched.Options{Designer: "ewj"},
		flowsched.PersistOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	v, err := p.View()
	if err != nil {
		t.Fatal(err)
	}
	wantVersion := v.Version()
	wantFP, err := v.RiskFingerprint([]string{"performance"}, flowsched.RiskOptions{Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// No p.Close(): this is the kill -9.

	// "Process two": a fresh host over the same root.
	h := newHost(t, root, Options{})
	rec := hostGet(t, h, "/p/alpha/version")
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered /version = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Flowsched-Version"); got != strconv.FormatUint(wantVersion, 10) {
		t.Fatalf("recovered store version %s, want %d", got, wantVersion)
	}

	// The recovered risk fingerprint is bit-identical to pre-crash.
	hd, err := h.Projects().Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	rv, err := hd.Project().View()
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := rv.RiskFingerprint([]string{"performance"}, flowsched.RiskOptions{Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Fatalf("recovered risk fingerprint %q, want %q", gotFP, wantFP)
	}

	// Cold /risk samples trials...
	if rec := hostGet(t, h, "/p/alpha/risk?trials=100&seed=7"); rec.Code != http.StatusOK {
		t.Fatalf("cold /risk = %d: %s", rec.Code, rec.Body.String())
	}
	cold := trialsOf(t, h, "alpha")
	if cold == 0 {
		t.Fatal("cold /risk sampled no trials")
	}
	// ...then an unrelated store advance invalidates the snapshot memo...
	err = hd.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("pulse unrelated"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	hd.Release()
	// ...and the warm /risk is a fingerprint-tier hit: zero new trials.
	rec = hostGet(t, h, "/p/alpha/risk?trials=100&seed=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("warm /risk = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Flowsched-Cache"); got != "fingerprint" {
		t.Fatalf("warm /risk cache = %q, want fingerprint", got)
	}
	if warm := trialsOf(t, h, "alpha"); warm != cold {
		t.Fatalf("warm /risk re-ran trials: monte_trials_total %d -> %d", cold, warm)
	}
}

// TestHostShutdownDrainsWALs: a graceful shutdown checkpoints every
// resident project, so a restart replays nothing and serves the same
// versions.
func TestHostShutdownDrainsWALs(t *testing.T) {
	root := t.TempDir()
	h := newHost(t, root, Options{})
	seedProject(t, h, "alpha")
	v1 := hostGet(t, h, "/p/alpha/version").Header().Get("X-Flowsched-Version")
	if err := h.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	h2 := newHost(t, root, Options{})
	v2 := hostGet(t, h2, "/p/alpha/version").Header().Get("X-Flowsched-Version")
	if v1 == "" || v1 != v2 {
		t.Fatalf("version across graceful restart: %q vs %q", v1, v2)
	}
}
