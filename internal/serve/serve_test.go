package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flowsched"
	"flowsched/internal/workload"
)

// newTracked builds a fig4 project with observability on, tools bound,
// stimuli imported, a plan in force, and one tracked run completed — so
// every read surface has content to serve.
func newTracked(t *testing.T) *flowsched.Project {
	t.Helper()
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{
		Designer: "ewj", Obs: flowsched.ObsOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	return p
}

// get performs one in-process request against the server's handler.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestRoutesServeEveryReadSurface(t *testing.T) {
	p := newTracked(t)
	if err := p.SetMilestone("tapeout", "performance", p.Now().Add(90*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{})
	cases := []struct {
		path string
		want string // substring of a correct body
	}{
		{"/healthz", `"status": "ok"`},
		{"/version", `"storeVersion"`},
		{"/status", `"activities"`},
		{"/gantt", "Create"},
		{"/tasktree", "performance"},
		{"/dashboard", "project dashboard"},
		{"/analyze", `"CriticalPath"`},
		{"/milestones", "tapeout"},
		{"/query?q=duration+of+Create", "Create"},
		{"/report", "status report"},
		{"/risk?trials=50&seed=7", `"p95"`},
		{"/whatif?edit=slow=Simulate*2.0", "What-if sweep"},
		{"/predict?activity=Create", `"estimate"`},
		{"/metrics", `serve_request_seconds_count{route="metrics"}`},
		{"/trace", "plan"},
		{"/events?since=0", `"events"`},
	}
	for _, c := range cases {
		rec := get(t, s, c.path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d: %s", c.path, rec.Code, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), c.want) {
			t.Errorf("GET %s body lacks %q:\n%.400s", c.path, c.want, rec.Body.String())
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := New(newTracked(t), Options{})
	for path, wantCode := range map[string]int{
		"/query":   http.StatusBadRequest, // missing q
		"/predict": http.StatusBadRequest, // missing activity
		"/predict?activity=Create&method=psychic": http.StatusBadRequest,
		"/risk?trials=banana":                     http.StatusBadRequest,
		"/report?from=tuesday":                    http.StatusBadRequest,
		"/whatif":                                 http.StatusBadRequest, // no edits
	} {
		if rec := get(t, s, path); rec.Code != wantCode {
			t.Errorf("GET %s = %d, want %d", path, rec.Code, wantCode)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/status", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /status = %d, want 405", rec.Code)
	}
}

// metricValue extracts one series' value from a /metrics page. name is
// the full series identity — for labeled families include the label
// set exactly as exposed, e.g. `serve_cache_events_total{event="hit",tier="memo"}`
// (label keys are emitted sorted).
func metricValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	body := get(t, s, "/metrics").Body.String()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRiskMemoized proves the per-snapshot cache short-circuits the
// expensive read: after warm-up, an identical risk request re-runs zero
// Monte-Carlo trials and the hit is observable in /metrics.
func TestRiskMemoized(t *testing.T) {
	s := New(newTracked(t), Options{})
	first := get(t, s, "/risk?trials=200&seed=3")
	if first.Code != http.StatusOK {
		t.Fatalf("cold risk = %d: %s", first.Code, first.Body.String())
	}
	if h := first.Header().Get("X-Flowsched-Cache"); h != "miss" {
		t.Fatalf("cold risk cache header = %q, want miss", h)
	}
	trialsBefore := metricValue(t, s, "monte_trials_total")
	if trialsBefore == 0 {
		t.Fatal("monte_trials_total not visible in /metrics after cold read")
	}

	second := get(t, s, "/risk?seed=3&trials=200") // same params, different spelling order
	if h := second.Header().Get("X-Flowsched-Cache"); h != "hit" {
		t.Fatalf("warm risk cache header = %q, want hit", h)
	}
	if second.Body.String() != first.Body.String() {
		t.Fatal("cached risk body differs from cold body")
	}
	if after := metricValue(t, s, "monte_trials_total"); after != trialsBefore {
		t.Fatalf("cached risk re-ran the simulation: monte_trials_total %d -> %d", trialsBefore, after)
	}
	if hits := metricValue(t, s, `serve_cache_events_total{event="hit",tier="memo"}`); hits < 1 {
		t.Fatalf("memo cache hits = %d, want >= 1", hits)
	}
}

// TestCacheInvalidatedWhenStoreAdvances pins the auto-invalidation: a
// mutation bumps the store version and the next read renders fresh.
func TestCacheInvalidatedWhenStoreAdvances(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	a := get(t, s, "/status")
	b := get(t, s, "/status")
	if b.Header().Get("X-Flowsched-Cache") != "hit" {
		t.Fatalf("second identical read = %q, want hit", b.Header().Get("X-Flowsched-Cache"))
	}
	// Mutate Level 3: a milestone write advances the store version.
	if err := p.SetMilestone("m1", "performance", p.Now().Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	c := get(t, s, "/status")
	if c.Header().Get("X-Flowsched-Cache") != "miss" {
		t.Fatalf("read after mutation = %q, want miss", c.Header().Get("X-Flowsched-Cache"))
	}
	if av, cv := a.Header().Get("X-Flowsched-Version"), c.Header().Get("X-Flowsched-Version"); av == cv {
		t.Fatalf("store version did not advance across mutation (%s)", av)
	}
}

// TestSnapshotIsolationUnderMutatingRun is the end-to-end race proof:
// reader goroutines hammer the read surfaces while the project executes
// a mutating tracked run. Every response must be internally consistent;
// responses that observed the same snapshot identity must be
// byte-identical.
func TestSnapshotIsolationUnderMutatingRun(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})

	type resp struct {
		route, version, now, body string
	}
	var mu sync.Mutex
	var got []resp

	stop := make(chan struct{})
	// Readers check in after their first response so the writer cannot
	// finish all its passes before any reader was ever scheduled (a real
	// risk on one CPU).
	started := make(chan struct{}, 4)
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		defer close(stop)
		for g := 0; g < 4; g++ {
			<-started
		}
		// A mutating tracked run: each pass re-plans and re-executes,
		// writing schedule instances, run records, and propagated dates.
		for i := 0; i < 3; i++ {
			if _, err := p.Plan([]string{"performance"}, flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
				t.Error(err)
				return
			}
			if _, err := p.RunWith([]string{"performance"}, flowsched.RunOptions{AutoComplete: true}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	routes := []string{"/status", "/dashboard", "/gantt", "/version", "/milestones", "/risk?trials=40&seed=9"}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				route := routes[(g+i)%len(routes)]
				req := httptest.NewRequest(http.MethodGet, route, nil)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s = %d during run: %s", route, rec.Code, rec.Body.String())
					return
				}
				mu.Lock()
				got = append(got, resp{
					route:   route,
					version: rec.Header().Get("X-Flowsched-Version"),
					now:     rec.Header().Get("X-Flowsched-Now"),
					body:    rec.Body.String(),
				})
				mu.Unlock()
				if i == 0 {
					started <- struct{}{}
				}
			}
		}(g)
	}
	writers.Wait()
	readers.Wait()

	if len(got) == 0 {
		t.Fatal("no responses collected")
	}
	// Same route + same snapshot identity => byte-identical body.
	seen := make(map[string]string)
	groups := 0
	for _, r := range got {
		key := r.route + "|" + r.version + "|" + r.now
		if prev, ok := seen[key]; ok {
			if prev != r.body {
				t.Fatalf("torn read: two %s responses at snapshot v%s/%s differ", r.route, r.version, r.now)
			}
			groups++
		} else {
			seen[key] = r.body
		}
	}
	t.Logf("%d responses, %d same-snapshot pairs verified", len(got), groups)
}

// TestGracefulShutdown serves over a real listener, then drains.
func TestGracefulShutdown(t *testing.T) {
	s := New(newTracked(t), Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	url := fmt.Sprintf("http://%s/healthz", l.Addr())
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", res.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}

// TestRiskFingerprintSurvivesStoreAdvance is the cross-snapshot warm
// hit: a store mutation that does not change the risk model (a
// milestone write) invalidates the per-snapshot memo, but the
// fingerprint tier still answers without re-running a single trial.
func TestRiskFingerprintSurvivesStoreAdvance(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	const path = "/risk?trials=120&seed=5"

	cold := get(t, s, path)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold risk = %d: %s", cold.Code, cold.Body.String())
	}
	if h := cold.Header().Get("X-Flowsched-Cache"); h != "miss" {
		t.Fatalf("cold risk cache header = %q, want miss", h)
	}
	trialsBefore := metricValue(t, s, "monte_trials_total")

	// Advance the store on a branch the risk model never reads.
	if err := p.SetMilestone("unrelated", "performance", p.Now().Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}

	warm := get(t, s, path)
	if h := warm.Header().Get("X-Flowsched-Cache"); h != "fingerprint" {
		t.Fatalf("post-advance risk cache header = %q, want fingerprint", h)
	}
	if warm.Header().Get("X-Flowsched-Version") == cold.Header().Get("X-Flowsched-Version") {
		t.Fatal("store version did not advance across the mutation")
	}
	if warm.Body.String() != cold.Body.String() {
		t.Fatal("fingerprint-tier body differs from the cold render")
	}
	if after := metricValue(t, s, "monte_trials_total"); after != trialsBefore {
		t.Fatalf("fingerprint hit re-ran the simulation: monte_trials_total %d -> %d", trialsBefore, after)
	}
	if hits := metricValue(t, s, `serve_cache_events_total{event="hit",tier="fingerprint"}`); hits != 1 {
		t.Fatalf("fingerprint cache hits = %d, want 1", hits)
	}
}

// TestWhatIfFingerprintScopesToTree: a /whatif response survives store
// writes outside its target tree's closure (an import of an unrelated
// data class) but is re-rendered when a class inside the tree changes.
func TestWhatIfFingerprintScopesToTree(t *testing.T) {
	p, err := flowsched.New(workload.ASICSource, flowsched.Options{Designer: "ewj"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"rtl", "constraints"} {
		if _, err := p.Import(class, []byte(class+" v1")); err != nil {
			t.Fatal(err)
		}
	}
	s := New(p, Options{})
	const path = "/whatif?targets=drcreport&edit=slow=Route*1.5"

	cold := get(t, s, path)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold whatif = %d: %s", cold.Code, cold.Body.String())
	}
	if h := cold.Header().Get("X-Flowsched-Cache"); h != "miss" {
		t.Fatalf("cold whatif cache header = %q, want miss", h)
	}

	// testbench is declared in the schema but outside the drcreport tree.
	if _, err := p.Import("testbench", []byte("tb v1")); err != nil {
		t.Fatal(err)
	}
	warm := get(t, s, path)
	if h := warm.Header().Get("X-Flowsched-Cache"); h != "fingerprint" {
		t.Fatalf("whatif after unrelated import = %q, want fingerprint", h)
	}
	if warm.Body.String() != cold.Body.String() {
		t.Fatal("fingerprint-tier whatif body differs from the cold render")
	}

	// rtl is a leaf of the tree: a new version must re-render.
	if _, err := p.Import("rtl", []byte("rtl v2")); err != nil {
		t.Fatal(err)
	}
	fresh := get(t, s, path)
	if h := fresh.Header().Get("X-Flowsched-Cache"); h != "miss" {
		t.Fatalf("whatif after in-tree import = %q, want miss", h)
	}
}
