package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flowsched/internal/obs"
)

// alwaysTrace returns options that retain every request's span tree.
func alwaysTrace() Options {
	return Options{TraceSampleRate: 1, SlowTraceThreshold: -1}
}

// TestSlowRiskReconstructable is the PR's acceptance pin: a slow /risk
// request must be fully reconstructable after the fact from its trace
// ID — found in the flight recorder, span tree reaching the Monte-Carlo
// subtree, dual-clock containment intact.
func TestSlowRiskReconstructable(t *testing.T) {
	// Sampling off; the 1ns slow threshold makes every request "slow",
	// exercising the tail-based always-keep path specifically.
	s := New(newTracked(t), Options{TraceSampleRate: -1, SlowTraceThreshold: time.Nanosecond})

	// 16384 trials = 256 per shard, the minimum at which per-shard spans
	// are emitted — the deepest level the span tree can reach.
	rec := get(t, s, "/risk?trials=16384&seed=11")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /risk = %d: %s", rec.Code, rec.Body.String())
	}
	traceID := rec.Header().Get("X-Flowsched-Trace")
	if len(traceID) != 32 {
		t.Fatalf("X-Flowsched-Trace = %q, want a 32-hex trace ID", traceID)
	}
	if _, ok := obs.ParseTraceparent(rec.Header().Get("traceparent")); !ok {
		t.Fatalf("response traceparent %q is malformed", rec.Header().Get("traceparent"))
	}

	// The record is retained in both flight tiers (only request so far).
	fr, ok := s.flight.Find(traceID)
	if !ok {
		t.Fatalf("flight recorder lost trace %s", traceID)
	}
	if fr.Route != "risk" || fr.Status != http.StatusOK || fr.Cache != "miss" {
		t.Fatalf("flight record = %+v, want route=risk status=200 cache=miss", fr)
	}
	if fr.StoreVersion == 0 || fr.VirtualNow.IsZero() {
		t.Fatalf("flight record lacks snapshot identity: %+v", fr)
	}
	if fr.SampledTrials == 0 {
		t.Fatalf("flight record lacks trial accounting: %+v", fr)
	}

	// The span tree reaches from the serve root down into the
	// Monte-Carlo shards, and containment holds on both clocks.
	if err := obs.ValidateContainment(fr.Spans); err != nil {
		t.Fatalf("containment: %v", err)
	}
	names := map[string]int{}
	for _, sp := range fr.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"serve.risk", "monte.simulate", "monte.shard"} {
		if names[want] == 0 {
			t.Errorf("span tree lacks %q (have %v)", want, names)
		}
	}

	// /debug/requests serves the record; /debug/trace renders the tree.
	body := get(t, s, "/debug/requests").Body.String()
	if !strings.Contains(body, traceID) {
		t.Fatalf("/debug/requests lacks trace %s:\n%.400s", traceID, body)
	}
	tree := get(t, s, "/debug/trace?id="+traceID).Body.String()
	for _, want := range []string{"serve.risk", "monte.simulate"} {
		if !strings.Contains(tree, want) {
			t.Errorf("/debug/trace lacks %q:\n%.400s", want, tree)
		}
	}
	jrec := get(t, s, "/debug/trace?id="+traceID+"&format=json")
	var full obs.FlightRecord
	if err := json.Unmarshal(jrec.Body.Bytes(), &full); err != nil {
		t.Fatalf("/debug/trace json: %v", err)
	}
	if full.TraceID != traceID || len(full.Spans) != len(fr.Spans) {
		t.Fatalf("json record %s/%d spans, want %s/%d", full.TraceID, len(full.Spans), traceID, len(fr.Spans))
	}

	if rec := get(t, s, "/debug/trace?id=ffffffffffffffffffffffffffffffff"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", rec.Code)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	s := New(newTracked(t), alwaysTrace())
	inbound := "4bf92f3577b34da6a3ce929d0e0e4736"
	req := httptest.NewRequest(http.MethodGet, "/status", nil)
	req.Header.Set("traceparent", "00-"+inbound+"-00f067aa0ba902b7-01")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Flowsched-Trace"); got != inbound {
		t.Fatalf("X-Flowsched-Trace = %q, want the inbound trace ID %q", got, inbound)
	}
	if id, ok := obs.ParseTraceparent(rec.Header().Get("traceparent")); !ok || id != inbound {
		t.Fatalf("outbound traceparent = %q, want trace ID %q", rec.Header().Get("traceparent"), inbound)
	}

	// A malformed traceparent is ignored: the request gets a fresh ID.
	req = httptest.NewRequest(http.MethodGet, "/status", nil)
	req.Header.Set("traceparent", "garbage")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Flowsched-Trace"); len(got) != 32 || got == inbound {
		t.Fatalf("malformed traceparent produced trace ID %q", got)
	}
}

func TestTraceRetentionKnobs(t *testing.T) {
	// Rate 1 retains every trace.
	s := New(newTracked(t), alwaysTrace())
	get(t, s, "/status")
	get(t, s, "/version")
	recent, _ := s.flight.Snapshot()
	for _, r := range recent {
		if len(r.Spans) == 0 {
			t.Fatalf("rate-1 server discarded spans for %s", r.Route)
		}
	}
	if keeps := s.reg.Counter("serve_trace_retained_total").Value(); keeps != 2 {
		t.Fatalf("serve_trace_retained_total = %d, want 2", keeps)
	}

	// Sampling and slow threshold both disabled: records stay (the
	// flight recorder is always on) but span trees are discarded.
	s = New(newTracked(t), Options{TraceSampleRate: -1, SlowTraceThreshold: -1})
	get(t, s, "/status")
	recent, _ = s.flight.Snapshot()
	if len(recent) != 1 || len(recent[0].Spans) != 0 {
		t.Fatalf("disabled retention kept spans: %+v", recent)
	}
	if disc := s.reg.Counter("serve_trace_discarded_total").Value(); disc != 1 {
		t.Fatalf("serve_trace_discarded_total = %d, want 1", disc)
	}
}

func TestDisableRequestObs(t *testing.T) {
	s := New(newTracked(t), Options{DisableRequestObs: true})
	rec := get(t, s, "/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Flowsched-Trace"); got != "" {
		t.Fatalf("disabled request obs still emitted trace ID %q", got)
	}
	recent, slowest := s.flight.Snapshot()
	if len(recent) != 0 || len(slowest) != 0 {
		t.Fatal("disabled request obs still recorded flights")
	}
	// The labeled request counter and latency histogram stay.
	if n := metricValue(t, s, `serve_requests_total{cache="",route="status"}`); n != 1 {
		t.Fatalf("serve_requests_total{route=status} = %d, want 1", n)
	}
}

// TestRegistriesLintClean walks both registries on the /metrics page —
// the server's own and the project's — after exercising every read
// surface, so a malformed name or an over-bound family anywhere in the
// serving path fails the build.
func TestRegistriesLintClean(t *testing.T) {
	p := newTracked(t)
	s := New(p, alwaysTrace())
	for _, path := range []string{
		"/status", "/gantt", "/dashboard", "/analyze", "/risk?trials=64&seed=2",
		"/whatif?edit=slow=Simulate*2.0", "/metrics", "/debug/requests", "/healthz",
	} {
		if rec := get(t, s, path); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	if errs := s.Registry().Lint(); len(errs) != 0 {
		t.Errorf("serve registry lint: %v", errs)
	}
	if errs := p.LintMetrics(); len(errs) != 0 {
		t.Errorf("project registry lint: %v", errs)
	}
}

// TestObservabilityHammer races request-span emission against the
// post-hoc inspection surfaces: mutating tracked runs and traced /risk
// requests on one side, /metrics, /debug/requests and /debug/trace
// scrapes on the other. Run under -race this is the PR's concurrency
// pin; every retained span tree must still validate.
func TestObservabilityHammer(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{TraceSampleRate: 1, SlowTraceThreshold: time.Nanosecond})

	const writers, scrapers, iters = 4, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				path := fmt.Sprintf("/risk?trials=200&seed=%d", w*1000+i)
				if i%5 == 0 {
					path = "/whatif?edit=slow=Simulate*2.0"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}(w)
	}
	for r := 0; r < scrapers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, path := range []string{"/metrics", "/debug/requests"} {
					req := httptest.NewRequest(http.MethodGet, path, nil)
					s.Handler().ServeHTTP(httptest.NewRecorder(), req)
				}
				recent, _ := s.flight.Snapshot()
				if len(recent) > 0 {
					req := httptest.NewRequest(http.MethodGet, "/debug/trace?id="+recent[0].TraceID, nil)
					s.Handler().ServeHTTP(httptest.NewRecorder(), req)
				}
			}
		}()
	}
	// Mutate the project concurrently so snapshot versions advance under
	// the readers' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			p.Run([]string{"performance"}, true)
		}
	}()
	wg.Wait()

	recent, slowest := s.flight.Snapshot()
	if len(recent) == 0 {
		t.Fatal("hammer produced no flight records")
	}
	for _, tier := range [][]obs.FlightRecord{recent, slowest} {
		for _, r := range tier {
			if err := obs.ValidateContainment(r.Spans); err != nil {
				t.Fatalf("trace %s (%s): %v", r.TraceID, r.Route, err)
			}
		}
	}
	if errs := s.Registry().Lint(); len(errs) != 0 {
		t.Errorf("serve registry lint after hammer: %v", errs)
	}
}
