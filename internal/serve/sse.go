package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowsched"
	"flowsched/internal/obs"
)

// eventHub fans the project's event stream out to every connected SSE
// subscriber: one pump goroutine per project (running only while
// someone is subscribed) blocks on Project.EventsAfter, marshals each
// new event once, and broadcasts the bytes — so N dashboards ride one
// stream instead of N pollers hammering snapshots.
//
// Each subscriber owns a bounded queue. A subscriber that cannot keep
// up is dropped (its channel closed with reason "slow" and the drop
// counted), never waited on: one stalled dashboard must not stall the
// pump or the other streams. Dropped clients reconnect with
// Last-Event-ID and replay what they missed from the log.
//
// Event IDs are 1-based stream positions: event i (0-based) carries
// id i+1, which is exactly the "next" cursor after consuming it — the
// same token the JSON poll mode returns, so the two modes share resume
// semantics.
type eventHub struct {
	p     *flowsched.Project
	queue int // per-subscriber buffer

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	closed  bool
	stop    chan struct{} // current pump's stop signal; nil when idle
	stopped chan struct{} // closed when the current pump exits

	subscribers *obs.Gauge   // serve_sse_subscribers
	streams     *obs.Counter // serve_sse_streams_total
	delivered   *obs.Counter // serve_sse_events_sent_total
	slowDrops   *obs.Counter // serve_sse_slow_dropped_total
}

// hubEvent is one broadcast event: the stream position (1-based; also
// the SSE id and resume cursor) plus the marshaled payload, shared by
// every subscriber so fan-out is byte-identical.
type hubEvent struct {
	seq  int
	data []byte
}

// subscriber is one live stream. reason is set under the hub lock
// before ch is closed, so the handler may read it after ch closes.
type subscriber struct {
	ch     chan hubEvent
	reason string // "slow" or "shutdown"
}

const defaultSSEQueue = 64

func newEventHub(p *flowsched.Project, queue int, reg *obs.Registry) *eventHub {
	if queue <= 0 {
		queue = defaultSSEQueue
	}
	return &eventHub{
		p: p, queue: queue,
		subs:        make(map[*subscriber]struct{}),
		subscribers: reg.Gauge("serve_sse_subscribers"),
		streams:     reg.Counter("serve_sse_streams_total"),
		delivered:   reg.Counter("serve_sse_events_sent_total"),
		slowDrops:   reg.Counter("serve_sse_slow_dropped_total"),
	}
}

// subscribe registers a new stream and (re)starts the pump if it is the
// first. Returns nil when the hub is already closed (server draining).
// The subscription is registered before the pump cursor is read, so an
// event appended at any point after subscribe is either within reach of
// the caller's history replay or will arrive on the channel — never
// lost in between. Duplicates across that boundary carry their stream
// position, so the handler filters them by seq.
func (h *eventHub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan hubEvent, h.queue)}
	h.subs[sub] = struct{}{}
	h.subscribers.Set(int64(len(h.subs)))
	h.streams.Inc()
	if h.stop == nil {
		h.stop = make(chan struct{})
		h.stopped = make(chan struct{})
		go h.pump(h.p.EventCount(), h.stop, h.stopped)
	}
	return sub
}

// unsubscribe removes a stream; the last one out stops the pump so an
// idle project carries no goroutine.
func (h *eventHub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.subscribers.Set(int64(len(h.subs)))
	}
	var stop chan struct{}
	if len(h.subs) == 0 && h.stop != nil && !h.closed {
		stop, h.stop, h.stopped = h.stop, nil, nil
	}
	h.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// pump follows the event stream from cursor and broadcasts every new
// event until stopped. Marshaling happens once per event, here.
func (h *eventHub) pump(cursor int, stop <-chan struct{}, stopped chan<- struct{}) {
	defer close(stopped)
	for {
		evs, wake := h.p.EventsAfter(cursor)
		for _, e := range evs {
			cursor++
			data, err := json.Marshal(e)
			if err != nil {
				continue // cannot happen for Event; skip rather than wedge
			}
			h.broadcast(hubEvent{seq: cursor, data: data})
		}
		if wake == nil {
			continue
		}
		select {
		case <-wake:
		case <-stop:
			return
		}
	}
}

// broadcast enqueues one event to every subscriber, dropping those
// whose queue is full rather than blocking the pump.
func (h *eventHub) broadcast(he hubEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- he:
			h.delivered.Inc()
		default:
			sub.reason = "slow"
			delete(h.subs, sub)
			close(sub.ch)
			h.slowDrops.Inc()
		}
	}
	h.subscribers.Set(int64(len(h.subs)))
}

// close shuts the hub down for server drain: the pump exits, then every
// remaining subscriber's channel is closed with reason "shutdown" so
// each live stream emits one terminal event and returns — Shutdown
// never hangs on an open stream.
func (h *eventHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	stop, stopped := h.stop, h.stopped
	h.stop, h.stopped = nil, nil
	h.mu.Unlock()

	if stop != nil {
		close(stop)
		<-stopped
	}

	h.mu.Lock()
	for sub := range h.subs {
		sub.reason = "shutdown"
		delete(h.subs, sub)
		close(sub.ch)
	}
	h.subscribers.Set(0)
	h.mu.Unlock()
}

// wantsSSE reports whether the /events request asked for a stream
// (Accept: text/event-stream, or ?stream=sse for curl-friendliness).
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.HasPrefix(r.Header.Get("Accept"), "text/event-stream")
}

// writeSSEEvent emits one SSE frame: id is the resume cursor after this
// event, data the one-line JSON payload.
func writeSSEEvent(w http.ResponseWriter, id int, data []byte) {
	fmt.Fprintf(w, "id: %d\nevent: flow\ndata: %s\n\n", id, data)
}

// eventsSSE serves one live stream: history replayed from the resume
// cursor, then hub broadcasts until client disconnect, slow-drop, or
// server shutdown (which sends a terminal frame).
func (s *Server) eventsSSE(w http.ResponseWriter, r *http.Request, since int) {
	// Resume: Last-Event-ID (the standard reconnect header) wins over
	// ?since. Both are "events already seen" counts.
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		n, err := strconv.Atoi(lei)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad Last-Event-ID %q: want non-negative integer", lei),
				http.StatusBadRequest)
			return
		}
		since = n
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.hub.subscribe()
	if sub == nil {
		w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	defer s.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// A stream outlives any sane write timeout; clear the deadline for
	// this connection only.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})

	// Replay history the client has not seen. Subscription happened
	// first, so anything appended from here on is also on the channel;
	// the seq filter below discards the overlap.
	cursor := since
	for _, e := range s.p.EventsSince(cursor) {
		cursor++
		data, err := json.Marshal(e)
		if err != nil {
			continue
		}
		writeSSEEvent(w, cursor, data)
	}
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case he, ok := <-sub.ch:
			if !ok {
				// Closed by the hub: say why, then end the stream. A
				// slow-dropped client resumes via Last-Event-ID; a
				// shutdown frame is the terminal event every live
				// subscriber is promised on drain.
				fmt.Fprintf(w, "event: %s\ndata: {\"resume\":%d}\n\n", sub.reason, cursor)
				flusher.Flush()
				return
			}
			if he.seq <= cursor {
				continue // already replayed from history
			}
			writeSSEEvent(w, he.seq, he.data)
			cursor = he.seq
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}
