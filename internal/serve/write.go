package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowsched"
)

// The mutating HTTP surface. Every write route shares one shape:
//
//   - POST only; GETs answer 405 and Options.ReadOnly answers 403.
//   - Writes serialize through the per-project write lock — the
//     server's own mutex standalone, the host registry's entry lock
//     (host.Handle.Do) in host mode — because facade mutators assume a
//     single writer.
//   - Optimistic concurrency via If-Match against the store version
//     that every read already stamps in X-Flowsched-Version: a designer
//     edits against the state they saw, and a stale If-Match answers
//     409 carrying the current version (header and body) so the client
//     re-reads and retries. Without If-Match the write is
//     unconditional.
//   - Errors map through writeError: 400 malformed request, 409
//     version conflict or fork-session limit, 422 execution failure
//     (the write ran and the flow failed — domain outcome, not
//     transport), 503 quarantined durable project (structured JSON
//     naming ErrQuarantined so operators can alert on the sentinel).
//   - On success the response carries the post-write store version in
//     X-Flowsched-Version — the token to If-Match the next write on.
//
// A successful write may advance the virtual clock (a run always
// does), so due virtual-time schedules fire right after it; see
// schedule.go.

// writeFunc performs one route's mutation against the locked project
// and returns the JSON payload of the success response.
type writeFunc func(p *flowsched.Project, r *http.Request) (any, error)

// conflictError is an If-Match mismatch: someone committed between the
// client's read and its write.
type conflictError struct{ current uint64 }

func (e *conflictError) Error() string {
	return fmt.Sprintf("version conflict: store is at %d", e.current)
}

// forkLimitError is the fork-session budget (Options.MaxForks) running
// out; also a 409 — the resource exists, the state refuses.
type forkLimitError struct{ max int }

func (e *forkLimitError) Error() string {
	return fmt.Sprintf("fork limit reached: %d sessions held; DELETE one first", e.max)
}

// errReadOnly gates every mutating route under Options.ReadOnly.
var errReadOnly = &httpError{code: http.StatusForbidden, msg: "server is read-only"}

// parseIfMatch reads the optional If-Match header: a store version,
// bare or quoted (ETag style). ok reports whether the header was sent.
func parseIfMatch(r *http.Request) (version uint64, ok bool, err error) {
	raw := strings.TrimSpace(r.Header.Get("If-Match"))
	if raw == "" {
		return 0, false, nil
	}
	raw = strings.Trim(raw, `"`)
	v, perr := strconv.ParseUint(raw, 10, 64)
	if perr != nil {
		return 0, false, badRequest("bad If-Match %q: want a store version", r.Header.Get("If-Match"))
	}
	return v, true, nil
}

// doWrite runs fn under the project's write lock. The main project
// uses the host's per-project lock when one is wired (Options.writeVia,
// i.e. host.Handle.Do), so HTTP writes serialize with checkpoints and
// embedded writers; fork sessions are server-local and always use the
// server's own mutex.
func (s *Server) doWrite(target *flowsched.Project, fn func(*flowsched.Project) error) error {
	if target == s.p && s.opt.writeVia != nil {
		return s.opt.writeVia(fn)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return fn(target)
}

// writeTarget resolves which project a write addresses: the server's
// own, or a named fork session (?fork=name).
func (s *Server) writeTarget(r *http.Request) (p *flowsched.Project, isFork bool, err error) {
	name := r.URL.Query().Get("fork")
	if name == "" {
		return s.p, false, nil
	}
	f := s.forks.get(name)
	if f == nil {
		return nil, false, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("no fork session %q", name)}
	}
	return f, true, nil
}

// handleWrite registers one mutating route.
func (s *Server) handleWrite(pattern, name string, fn writeFunc) {
	s.mux.HandleFunc(pattern, s.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		s.serveWrite(w, r, name, fn)
	}))
}

func (s *Server) serveWrite(w http.ResponseWriter, r *http.Request, name string, fn writeFunc) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.opt.ReadOnly {
		s.writeError(w, r, name, errReadOnly)
		return
	}
	target, isFork, err := s.writeTarget(r)
	if err != nil {
		s.writeError(w, r, name, err)
		return
	}
	ifMatch, haveMatch, err := parseIfMatch(r)
	if err != nil {
		s.writeError(w, r, name, err)
		return
	}

	var payload any
	var newVersion uint64
	var vnow time.Time
	err = s.doWrite(target, func(p *flowsched.Project) error {
		if haveMatch && p.Version() != ifMatch {
			return &conflictError{current: p.Version()}
		}
		var ferr error
		payload, ferr = fn(p, r)
		newVersion, vnow = p.Version(), p.Now()
		return ferr
	})
	if err != nil {
		s.writeError(w, r, name, err)
		return
	}
	if !isFork {
		// The write may have moved the virtual clock across a schedule
		// boundary; fire whatever came due (each takes the write lock
		// itself).
		s.runDueSchedules()
	}
	if ri := reqInfoFrom(r); ri != nil {
		ri.version, ri.vnow = newVersion, vnow
	}
	s.storeVersion.Set(int64(s.p.Version()))
	s.writes.With(name, "ok").Inc()
	w.Header().Set("X-Flowsched-Version", strconv.FormatUint(newVersion, 10))
	w.Header().Set("X-Flowsched-Now", strconv.FormatInt(vnow.UnixNano(), 10))
	body, ctype, err := jsonBody(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// writeErrorBody is the structured JSON error of the write path.
type writeErrorBody struct {
	Error          string   `json:"error"`
	CurrentVersion *uint64  `json:"currentVersion,omitempty"`
	Quarantined    bool     `json:"quarantined,omitempty"`
	Sentinel       string   `json:"sentinel,omitempty"`
	Failed         string   `json:"failed,omitempty"`
	Completed      []string `json:"completed,omitempty"`
}

// writeError maps a write failure onto status + structured JSON — the
// error-mapping table the tests pin.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, name string, err error) {
	body := writeErrorBody{Error: err.Error()}
	code := http.StatusBadRequest
	outcome := "invalid"

	var ce *conflictError
	var fe *forkLimitError
	var xe *flowsched.ExecError
	switch {
	case errors.As(err, &ce):
		// Stale If-Match: tell the client where the store actually is,
		// in the body and in the same header reads stamp, so the retry
		// needs no extra round trip.
		code, outcome = http.StatusConflict, "conflict"
		cur := ce.current
		body.CurrentVersion = &cur
		w.Header().Set("X-Flowsched-Version", strconv.FormatUint(cur, 10))
		s.conflicts.Inc()
	case errors.Is(err, flowsched.ErrQuarantined):
		// The project's WAL is wedged: reads still serve, writes must
		// not pretend to be server bugs. 503 + the sentinel's name so
		// probes and operators key off it.
		code, outcome = http.StatusServiceUnavailable, "quarantined"
		body.Quarantined = true
		body.Sentinel = "ErrQuarantined"
	case errors.As(err, &fe):
		code, outcome = http.StatusConflict, "fork_limit"
	case errors.As(err, &xe):
		// The write ran and the flow failed — a domain outcome carried
		// back to the designer, not a transport error.
		code, outcome = http.StatusUnprocessableEntity, "failed"
		if xe.Failed != nil {
			body.Failed = xe.Failed.Activity
			body.Completed = xe.Failed.Completed
		}
	case errors.Is(err, context.Canceled):
		code, outcome = statusClientClosedRequest, "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		code, outcome = http.StatusServiceUnavailable, "canceled"
		w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
	default:
		code = errCode(err) // *httpError keeps its code; others are 400
		if code == http.StatusForbidden {
			outcome = "readonly"
		}
	}
	if ri := reqInfoFrom(r); ri != nil {
		ri.errMsg = err.Error()
	}
	s.writes.With(name, outcome).Inc()
	b, _ := json.MarshalIndent(body, "", "  ")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeTargets resolves the "targets" parameter against the locked
// project (default: the tracked plan's targets).
func writeTargets(p *flowsched.Project, r *http.Request) ([]string, error) {
	if t := r.URL.Query().Get("targets"); t != "" {
		return strings.Split(t, ","), nil
	}
	if pl := p.CurrentPlan(); pl != nil && len(pl.Targets) > 0 {
		return append([]string(nil), pl.Targets...), nil
	}
	return nil, badRequest("no targets: pass ?targets=a,b or plan first")
}

func qBool(r *http.Request, name string, def bool) (bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(raw)
	if err != nil {
		return false, badRequest("bad %s %q: want true|false", name, raw)
	}
	return b, nil
}

// writeRoutes registers the mutating surface.
func (s *Server) writeRoutes() {
	s.handleWrite("/plan", "plan", writePlan)
	s.handleWrite("/run", "run", writeRun)
	s.handleWrite("/track", "track", writeTrack)
	s.handleWrite("/complete", "complete", writeComplete)
	s.handleWrite("/import", "import", writeImport)
	s.handleWrite("/milestone", "milestone", writeMilestone)
	s.handleWrite("/propagate", "propagate", writePropagate)
	s.handleWrite("/edit", "edit", writeEdit)
	s.mux.HandleFunc("/fork", s.instrument("fork", s.forkRoute))
	s.mux.HandleFunc("/schedules", s.instrument("schedules", s.schedulesRoute))
}

// writePlan derives a new tracked plan: POST /plan?targets=a,b&hours=8.
func writePlan(p *flowsched.Project, r *http.Request) (any, error) {
	targets, err := writeTargets(p, r)
	if err != nil {
		return nil, err
	}
	hours, err := qInt(r, "hours", 8)
	if err != nil {
		return nil, err
	}
	if hours <= 0 {
		return nil, badRequest("bad hours %d: want > 0", hours)
	}
	pl, err := p.Plan(targets, flowsched.Fixed{Default: time.Duration(hours) * time.Hour}, flowsched.PlanOptions{})
	if err != nil {
		return nil, err
	}
	return struct {
		PlanVersion int      `json:"planVersion"`
		Targets     []string `json:"targets"`
		Activities  int      `json:"activities"`
	}{pl.Version, targets, len(pl.Activities)}, nil
}

// writeRun executes the flow: POST /run?targets=&parallel=&autocomplete=.
func writeRun(p *flowsched.Project, r *http.Request) (any, error) {
	targets, err := writeTargets(p, r)
	if err != nil {
		return nil, err
	}
	parallel, err := qBool(r, "parallel", false)
	if err != nil {
		return nil, err
	}
	auto, err := qBool(r, "autocomplete", true)
	if err != nil {
		return nil, err
	}
	res, err := p.RunWith(targets, flowsched.RunOptions{AutoComplete: auto, Parallel: parallel})
	if err != nil {
		return nil, err
	}
	return struct {
		Targets    []string  `json:"targets"`
		Activities int       `json:"activities"`
		Started    time.Time `json:"started"`
		Finished   time.Time `json:"finished"`
	}{targets, len(res.Outcomes), res.Started, res.Finished}, nil
}

// writeTrack applies hand-collected actuals: POST /track with a CSV
// body of activity,start,finish,done rows — the paper's manual status
// tracking, over HTTP.
func writeTrack(p *flowsched.Project, r *http.Request) (any, error) {
	defer r.Body.Close()
	body := io.LimitReader(r.Body, 1<<20)
	n, err := p.ImportActualsCSV(body)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return struct {
		Applied int `json:"applied"`
	}{n}, nil
}

// writeComplete links an activity to its final entity instance:
// POST /complete?activity=Name&entity=id.
func writeComplete(p *flowsched.Project, r *http.Request) (any, error) {
	activity := r.URL.Query().Get("activity")
	if activity == "" {
		return nil, badRequest("missing activity: pass ?activity=Name")
	}
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		return nil, badRequest("missing entity: pass ?entity=id (the final design data instance)")
	}
	if err := p.Complete(activity, entity); err != nil {
		return nil, err
	}
	return struct {
		Completed string `json:"completed"`
		Entity    string `json:"entity"`
	}{activity, entity}, nil
}

// writeImport registers primary design data: POST /import?class=X with
// the entity's content as the body.
func writeImport(p *flowsched.Project, r *http.Request) (any, error) {
	class := r.URL.Query().Get("class")
	if class == "" {
		return nil, badRequest("missing class: pass ?class=name")
	}
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	id, err := p.Import(class, data)
	if err != nil {
		return nil, err
	}
	return struct {
		ID    string `json:"id"`
		Class string `json:"class"`
	}{id, class}, nil
}

// writeMilestone commits a named target date:
// POST /milestone?name=&class=&target=RFC3339.
func writeMilestone(p *flowsched.Project, r *http.Request) (any, error) {
	name := r.URL.Query().Get("name")
	class := r.URL.Query().Get("class")
	rawTarget := r.URL.Query().Get("target")
	if name == "" || class == "" || rawTarget == "" {
		return nil, badRequest("milestone needs ?name=&class=&target=RFC3339")
	}
	target, err := time.Parse(time.RFC3339, rawTarget)
	if err != nil {
		return nil, badRequest("bad target %q: want RFC3339", rawTarget)
	}
	if err := p.SetMilestone(name, class, target); err != nil {
		return nil, err
	}
	return struct {
		Milestone string    `json:"milestone"`
		Class     string    `json:"class"`
		Target    time.Time `json:"target"`
	}{name, class, target}, nil
}

// writePropagate re-projects the plan for slips: POST /propagate.
func writePropagate(p *flowsched.Project, _ *http.Request) (any, error) {
	finish, err := p.Propagate()
	if err != nil {
		return nil, err
	}
	return struct {
		Finish time.Time `json:"finish"`
	}{finish}, nil
}

// writeEdit promotes a what-if edit into the tracked reality:
// POST /edit?spec=name=Act*1.5;Act2+3h (the hercules what-if syntax).
func writeEdit(p *flowsched.Project, r *http.Request) (any, error) {
	spec := r.URL.Query().Get("spec")
	if spec == "" {
		return nil, badRequest("missing spec: pass ?spec=name=Act*1.5;Act+3h")
	}
	e, err := flowsched.ParseScenarioEdit(spec)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if err := p.ApplyScenarioEdit(e); err != nil {
		return nil, badRequest("%v", err)
	}
	return struct {
		Applied string `json:"applied"`
	}{e.Name}, nil
}

// forkSessions holds the server's named what-if forks: cheap
// copy-on-write branches a designer mutates through the same write
// routes (?fork=name) and reads through every read route (?fork=name),
// without ever touching the tracked project.
type forkSessions struct {
	mu  sync.Mutex
	m   map[string]*flowsched.Project
	seq int
	max int
}

const defaultMaxForks = 8

func (f *forkSessions) limit() int {
	if f.max <= 0 {
		return defaultMaxForks
	}
	return f.max
}

func (f *forkSessions) get(name string) *flowsched.Project {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m[name]
}

func (f *forkSessions) put(name string, p *flowsched.Project) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = make(map[string]*flowsched.Project)
	}
	if name == "" {
		f.seq++
		name = fmt.Sprintf("f%d", f.seq)
	} else if _, ok := f.m[name]; ok {
		return "", &httpError{code: http.StatusConflict, msg: fmt.Sprintf("fork session %q already exists", name)}
	}
	if len(f.m) >= f.limit() {
		return "", &forkLimitError{max: f.limit()}
	}
	f.m[name] = p
	return name, nil
}

func (f *forkSessions) del(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.m[name]; !ok {
		return false
	}
	delete(f.m, name)
	return true
}

func (f *forkSessions) list() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.m))
	for name, p := range f.m {
		out[name] = p.Version()
	}
	return out
}

// forkRoute manages fork sessions:
//
//	POST   /fork?name=x   branch the tracked project (name optional)
//	GET    /fork          list sessions and their store versions
//	DELETE /fork?name=x   discard a session
//
// A session is mutated and read through any route's ?fork=name. Forks
// are in-memory only — never durable, never streamed — and die with
// the server.
func (s *Server) forkRoute(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		body, ctype, err := jsonBody(struct {
			Forks map[string]uint64 `json:"forks"`
		}{s.forks.list()})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	case http.MethodPost:
		if s.opt.ReadOnly {
			s.writeError(w, r, "fork", errReadOnly)
			return
		}
		ifMatch, haveMatch, err := parseIfMatch(r)
		if err != nil {
			s.writeError(w, r, "fork", err)
			return
		}
		var f *flowsched.Project
		var at uint64
		err = s.doWrite(s.p, func(p *flowsched.Project) error {
			if haveMatch && p.Version() != ifMatch {
				return &conflictError{current: p.Version()}
			}
			var ferr error
			f, ferr = p.Fork()
			at = p.Version()
			return ferr
		})
		if err != nil {
			s.writeError(w, r, "fork", err)
			return
		}
		name, err := s.forks.put(r.URL.Query().Get("name"), f)
		if err != nil {
			s.writeError(w, r, "fork", err)
			return
		}
		s.writes.With("fork", "ok").Inc()
		w.Header().Set("X-Flowsched-Version", strconv.FormatUint(at, 10))
		body, ctype, merr := jsonBody(struct {
			Fork    string `json:"fork"`
			Version uint64 `json:"version"`
		}{name, at})
		if merr != nil {
			http.Error(w, merr.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	case http.MethodDelete:
		if s.opt.ReadOnly {
			s.writeError(w, r, "fork", errReadOnly)
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			s.writeError(w, r, "fork", badRequest("missing name: pass ?name=session"))
			return
		}
		if !s.forks.del(name) {
			s.writeError(w, r, "fork", &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("no fork session %q", name)})
			return
		}
		s.writes.With("fork", "ok").Inc()
		body, ctype, _ := jsonBody(struct {
			Deleted string `json:"deleted"`
		}{name})
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	default:
		w.Header().Set("Allow", "GET, POST, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
