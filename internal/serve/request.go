// Request-scoped observability for the serving path: per-request trace
// IDs (W3C traceparent in, traceparent + X-Flowsched-Trace out), a
// request-scoped span tracer threaded through the rendering facade via
// context, tail-based trace retention (a sampling knob plus an
// always-keep latency threshold), and the flight recorder every
// completed request lands in.
package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"flowsched/internal/obs"
)

// DefaultRequestSpans bounds each request's private tracer. A cold
// 1M-trial /risk render emits on the order of 70 spans (root + monte
// root + 64 shards); a deep what-if sweep a few hundred — 4096 leaves
// generous headroom without letting one request hold megabytes.
const DefaultRequestSpans = 4096

// LatencyBuckets suits the serving path's real latency spread, which
// BENCH_serve.json documents: microsecond-scale memo and fingerprint
// hits, hundreds of microseconds for cheap cold renders, out through
// multi-second cold 1M-trial /risk simulations. Bounds in seconds.
var LatencyBuckets = []float64{
	5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30,
}

// reqInfo rides the request context: the per-request tracer and root
// span for the facade to nest under, plus the fields the handler layers
// fill in as the request progresses, harvested into the flight record
// when the request completes. It is written only by the goroutine
// serving the request.
type reqInfo struct {
	traceID string
	tracer  *obs.Tracer
	root    *obs.Span

	cache         string
	version       uint64
	vnow          time.Time
	sampledTrials int64
	reusedTrials  int64
	errMsg        string
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's reqInfo, or nil when request
// observability is disabled.
func reqInfoFrom(r *http.Request) *reqInfo {
	ri, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	return ri
}

func withReqInfo(r *http.Request, ri *reqInfo) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
}

// statusWriter records the response status for the flight record.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE streams can push each
// event through the connection as it happens.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the real connection —
// the SSE handler uses it to clear the server's write deadline on
// long-lived streams.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// debugRequests serves the flight recorder's two tiers as JSON.
func (s *Server) debugRequests(w http.ResponseWriter, _ *http.Request) {
	recent, slowest := s.flight.Snapshot()
	if recent == nil {
		recent = []obs.FlightRecord{}
	}
	if slowest == nil {
		slowest = []obs.FlightRecord{}
	}
	body, ctype, err := jsonBody(struct {
		Recent  []obs.FlightRecord `json:"recent"`
		Slowest []obs.FlightRecord `json:"slowest"`
	}{recent, slowest})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// debugTrace serves one retained request's span tree by trace ID:
// /debug/trace?id=<traceID>[&format=json].
func (s *Server) debugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id: pass ?id=<traceID>", http.StatusBadRequest)
		return
	}
	rec, ok := s.flight.Find(id)
	if !ok {
		http.Error(w, "trace not retained: "+id, http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		blob, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(append(blob, '\n'))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(obs.RenderTree(rec.Spans, 0)))
}

// registerPprof mounts the stdlib profiling handlers under
// /debug/pprof/ (Options.EnablePprof).
func (s *Server) registerPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
