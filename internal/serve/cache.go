package serve

import (
	"sync"

	"flowsched/internal/obs"
)

// memoCache memoizes rendered response bodies per (snapshot identity,
// route+params) with singleflight semantics: when N identical requests
// arrive against the same snapshot, one renders and N-1 wait for its
// bytes. Entries are keyed by the full snapshot identity (store version
// + virtual now), so a cache hit is byte-identical to the response the
// leader produced; the whole cache is invalidated as soon as a request
// observes a newer store version — the memo never outlives the data it
// was rendered from.
type memoCache struct {
	mu      sync.Mutex
	version uint64 // newest store version observed; older entries are garbage
	entries map[string]*memoEntry
	max     int

	hits, misses, evictions, invalidations *obs.Counter
}

// memoEntry is one rendered body. ready is closed once body/ctype/err
// are final; waiters must not read them before.
type memoEntry struct {
	ready chan struct{}
	body  []byte
	ctype string
	err   error
}

func newMemoCache(max int, reg *obs.Registry) *memoCache {
	// One labeled family covers both cache tiers; this is the memo side
	// (tier="memo"), fpCache carries tier="fingerprint".
	ev := reg.CounterVec("serve_cache_events_total", "tier", "event")
	return &memoCache{
		entries:       make(map[string]*memoEntry),
		max:           max,
		hits:          ev.With("memo", "hit"),
		misses:        ev.With("memo", "miss"),
		evictions:     ev.With("memo", "eviction"),
		invalidations: ev.With("memo", "invalidation"),
	}
}

// do returns the memoized body for key, rendering at most once per key.
// version is the store snapshot version behind the render; when a newer
// version shows up the accumulated entries are dropped wholesale (the
// key embeds the full snapshot identity, so the clear is for memory,
// not correctness). Failed renders are never memoized.
func (c *memoCache) do(version uint64, key string, render func() ([]byte, string, error)) (body []byte, ctype string, hit bool, err error) {
	c.mu.Lock()
	if version > c.version {
		c.entries = make(map[string]*memoEntry)
		c.version = version
		c.invalidations.Inc()
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, "", false, e.err
		}
		c.hits.Inc()
		return e.body, e.ctype, true, nil
	}
	if len(c.entries) >= c.max {
		// Full: drop everything rather than track recency. Versions
		// advance constantly under execution, so the whole map turns
		// over soon anyway; precision would buy little.
		c.entries = make(map[string]*memoEntry)
		c.evictions.Inc()
	}
	e := &memoEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Inc()
	e.body, e.ctype, e.err = render()
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.body, e.ctype, false, e.err
}
