// Package serve exposes a project's read surfaces over HTTP — the
// serving tier the paper's architecture implies: schedule state lives
// in the flow-management database precisely so that every stakeholder
// (designers, project management, reporting tools) reads one consistent
// picture of plan vs. actual (§IV.B–C).
//
// Consistency is the contract: every request is answered from one
// Manager.AtView snapshot of the task database, captured at arrival.
// A response never tears — its sections all describe the same store
// version and the same virtual instant — even while the project plans
// and executes concurrently. The snapshot identity is echoed on every
// response (X-Flowsched-Version, X-Flowsched-Now), so clients can
// correlate reads.
//
// Expensive reads (risk simulation, what-if sweeps, dashboards) are
// memoized per snapshot identity with singleflight semantics and
// invalidated the moment the store advances; see memoCache. Behind that
// memo, /risk and /whatif carry a second, fingerprint-keyed tier that
// deliberately survives store advances: responses are keyed by a
// canonical hash of their actual inputs (derived risk models, sweep
// closure), so a mutation on an unrelated branch of the database is
// still a cache hit (X-Flowsched-Cache: fingerprint) and re-runs zero
// simulation trials; see fpCache. The server carries its own
// request-scoped metrics (latency histogram, in-flight gauge, per-route
// counters, cache hit/miss counters, fingerprint hit/miss counters)
// exposed on /metrics alongside the project's own registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowsched"
	"flowsched/internal/obs"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheEntries bounds the memoized responses held at once
	// (default 256). The cache is cleared whenever the store advances.
	CacheEntries int
	// DisableCache turns response memoization off: every request
	// renders from its own snapshot. Responses stay snapshot-consistent
	// individually; byte-identity across equal snapshots is then up to
	// the renderers (they are deterministic).
	DisableCache bool
	// ReadTimeout, WriteTimeout, IdleTimeout bound request handling
	// (defaults 5s / 2m / 2m). WriteTimeout must cover the slowest
	// cold read — a large risk simulation or what-if sweep.
	ReadTimeout, WriteTimeout, IdleTimeout time.Duration
	// TraceSampleRate is the fraction of requests whose full span tree
	// is retained in the flight recorder (every round(1/rate)-th
	// request). 0 selects the default 0.01 (every 100th); negative
	// disables sampling. Requests slower than SlowTraceThreshold keep
	// their traces regardless — tail-based retention means the requests
	// most worth explaining are always explained.
	TraceSampleRate float64
	// SlowTraceThreshold is the latency at or above which a request's
	// trace is always retained. 0 selects the default 500ms; negative
	// disables the slow path.
	SlowTraceThreshold time.Duration
	// FlightEntries and FlightSlowest size the flight recorder's recent
	// ring and slowest-N tier (defaults obs.DefaultFlightRing and
	// obs.DefaultFlightSlow).
	FlightEntries, FlightSlowest int
	// EnablePprof mounts the stdlib net/http/pprof handlers under
	// /debug/pprof/. Off by default: profiles expose internals, so the
	// operator opts in (flowservd -pprof).
	EnablePprof bool
	// DisableRequestObs turns off per-request tracing and flight
	// recording (labeled metrics stay). The bench harness uses it to
	// price the request-observability layer; production servers should
	// leave it on.
	DisableRequestObs bool
	// MaxInFlight is the admission-control capacity in weight units:
	// /risk and /whatif consume 8 units each, other read surfaces 1,
	// operational routes (metrics, healthz, trace, events, debug) none.
	// 0 disables admission control (every request runs immediately).
	MaxInFlight int
	// QueueDepth bounds requests waiting for admission; arrivals beyond
	// it are shed with 503 + Retry-After instead of queuing. Defaults to
	// 2×MaxInFlight when admission control is on.
	QueueDepth int
	// RetryAfter is the Retry-After hint on shed responses
	// (default 1s).
	RetryAfter time.Duration
	// RouteDeadline bounds each snapshot-pinned request's rendering
	// time; on expiry the simulation stops cooperatively and the client
	// gets 503 + Retry-After. 0 (the default) disables it.
	RouteDeadline time.Duration
	// TenantRate and TenantBurst (Host only) give every project a
	// fair-share token bucket: each request to /p/{id}/... spends one
	// token, refilled at TenantRate per second up to TenantBurst, so one
	// hot tenant cannot starve the rest. TenantRate 0 disables the
	// buckets. TenantBurst defaults to max(1, ceil(TenantRate)).
	TenantRate  float64
	TenantBurst int
	// ReadOnly disables every mutating route (writes, scenario edits,
	// fork sessions, schedule CRUD): POSTs answer 403. The read-only
	// server of earlier releases, for deployments that mutate through
	// the Go facade or CLI only.
	ReadOnly bool
	// SSEQueue bounds each SSE subscriber's event queue (default 64).
	// A subscriber whose queue overflows is dropped — it reconnects
	// with Last-Event-ID and replays what it missed — so one stalled
	// dashboard never stalls the broadcast pump or its peers.
	SSEQueue int
	// MaxForks bounds the concurrently held fork sessions (default 8);
	// POST /fork beyond it answers 409 until one is deleted.
	MaxForks int

	// lim, when set, replaces the server's own limiter — the multi-
	// tenant Host shares one admission budget across all its per-project
	// servers.
	lim *limiter
	// writeVia, when set, routes every write through the host's
	// per-project write lock (host.Handle.Do) instead of the server's
	// own mutex, so HTTP writes serialize with checkpoints, eviction,
	// and any embedded writers sharing the registry.
	writeVia func(func(*flowsched.Project) error) error
}

// Server serves one project's read surfaces.
type Server struct {
	p     *flowsched.Project
	opt   Options
	reg   *obs.Registry
	cache *memoCache
	fp    *fpCache
	mux   *http.ServeMux
	srv   *http.Server

	inflight     *obs.Gauge
	requests     *obs.CounterVec   // serve_requests_total{route,cache}
	latency      *obs.HistogramVec // serve_request_seconds{route}
	storeVersion *obs.Gauge
	projDropped  *obs.Gauge // project tracer's dropped-span count, set at scrape

	flight        *obs.FlightRecorder
	traceKeeps    *obs.Counter // requests whose span tree was retained
	traceDiscards *obs.Counter // requests traced but not retained
	reqSeq        atomic.Uint64
	sampleEvery   uint64 // retain every Nth request's trace; 0 = never
	slowThresh    time.Duration

	lim      *limiter
	shed     *obs.CounterVec // serve_shed_total{route,reason}
	canceled *obs.CounterVec // serve_requests_canceled_total{route}

	hub *eventHub // SSE broadcast fan-out for /events

	wmu       sync.Mutex      // serializes writes in standalone mode (see Options.writeVia)
	writes    *obs.CounterVec // serve_writes_total{route,outcome}
	conflicts *obs.Counter    // serve_write_conflicts_total

	forks forkSessions // named what-if fork sessions (POST /fork, ?fork=)
	sched *scheduler   // virtual-time cron schedules (/schedules)
}

// New builds a server over a project. The project stays fully usable —
// the server only ever takes snapshots of it.
func New(p *flowsched.Project, opt Options) *Server {
	if opt.Addr == "" {
		opt.Addr = ":8080"
	}
	if opt.CacheEntries <= 0 {
		opt.CacheEntries = 256
	}
	if opt.ReadTimeout <= 0 {
		opt.ReadTimeout = 5 * time.Second
	}
	if opt.WriteTimeout <= 0 {
		opt.WriteTimeout = 2 * time.Minute
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 2 * time.Minute
	}
	reg := obs.NewRegistry()
	s := &Server{
		p: p, opt: opt, reg: reg,
		cache:         newMemoCache(opt.CacheEntries, reg),
		fp:            newFPCache(opt.CacheEntries, reg),
		mux:           http.NewServeMux(),
		inflight:      reg.Gauge("serve_requests_in_flight"),
		requests:      reg.CounterVec("serve_requests_total", "route", "cache"),
		latency:       reg.HistogramVec("serve_request_seconds", LatencyBuckets, "route"),
		storeVersion:  reg.Gauge("serve_store_version"),
		projDropped:   reg.Gauge("project_trace_dropped_spans"),
		flight:        obs.NewFlightRecorder(opt.FlightEntries, opt.FlightSlowest),
		traceKeeps:    reg.Counter("serve_trace_retained_total"),
		traceDiscards: reg.Counter("serve_trace_discarded_total"),
		shed:          reg.CounterVec("serve_shed_total", "route", "reason"),
		canceled:      reg.CounterVec("serve_requests_canceled_total", "route"),
		writes:        reg.CounterVec("serve_writes_total", "route", "outcome"),
		conflicts:     reg.Counter("serve_write_conflicts_total"),
	}
	s.hub = newEventHub(p, opt.SSEQueue, reg)
	s.forks.max = opt.MaxForks
	s.sched = newScheduler(reg)
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
		s.opt.RetryAfter = opt.RetryAfter
	}
	s.lim = opt.lim
	if s.lim == nil && opt.MaxInFlight > 0 {
		qd := opt.QueueDepth
		if qd == 0 {
			qd = 2 * opt.MaxInFlight
		}
		s.lim = newLimiter(int64(opt.MaxInFlight), qd, reg.Gauge("serve_queue_depth"))
	}
	s.flight.Instrument(reg, "serve_flight")
	rate := opt.TraceSampleRate
	if rate == 0 {
		rate = 0.01
	}
	if rate > 0 {
		if rate > 1 {
			rate = 1
		}
		s.sampleEvery = uint64(math.Round(1 / rate))
	}
	s.slowThresh = opt.SlowTraceThreshold
	if s.slowThresh == 0 {
		s.slowThresh = 500 * time.Millisecond
	}
	s.routes()
	s.srv = &http.Server{
		Addr: opt.Addr, Handler: s.mux,
		ReadTimeout: opt.ReadTimeout, WriteTimeout: opt.WriteTimeout,
		IdleTimeout: opt.IdleTimeout,
	}
	return s
}

// Handler returns the route handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's own metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ListenAndServe serves until Shutdown (or a listener error).
func (s *Server) ListenAndServe() error { return s.srv.ListenAndServe() }

// Serve serves on an existing listener (Options.Addr is ignored).
func (s *Server) Serve(l net.Listener) error { return s.srv.Serve(l) }

// Shutdown drains gracefully: the event hub closes first (every live
// SSE subscriber gets a terminal "shutdown" frame and its handler
// returns, so streams never wedge the drain), then the listener closes
// and in-flight requests run to completion (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.hub.close()
	return s.srv.Shutdown(ctx)
}

// CloseStreams ends every live SSE stream with a terminal frame without
// shutting the HTTP server down — the Host drains its per-project
// servers this way before closing its own listener.
func (s *Server) CloseStreams() { s.hub.close() }

// httpError carries a status code through a renderer error path.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errCode(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.code
	}
	return http.StatusBadRequest
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before we answered" — no stdlib constant exists.
const statusClientClosedRequest = 499

// retryAfterValue renders Options.RetryAfter for the Retry-After
// header, rounding up so a sub-second hint never becomes "0".
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// renderFunc renders one route's body from a pinned view.
type renderFunc func(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error)

// fingerprintFunc computes the canonical input fingerprint for one
// request, or errors when the request is not fingerprintable (the route
// then renders directly; the tier is a pure optimization).
type fingerprintFunc func(v *flowsched.ProjectView, r *http.Request) (string, error)

func (s *Server) routes() {
	// Snapshot-pinned, memoized read surfaces.
	s.handleView("/status", "status", renderStatus)
	s.handleView("/gantt", "gantt", renderGantt)
	s.handleView("/tasktree", "tasktree", renderTaskTree)
	s.handleView("/dashboard", "dashboard", renderDashboard)
	s.handleView("/analyze", "analyze", renderAnalyze)
	s.handleView("/milestones", "milestones", renderMilestones)
	s.handleView("/query", "query", renderQuery)
	s.handleView("/report", "report", renderReport)
	s.handleViewFP("/risk", "risk", riskFingerprint, renderRisk)
	s.handleViewFP("/whatif", "whatif", whatifFingerprint, renderWhatIf)
	s.handleView("/predict", "predict", renderPredict)
	s.handleView("/version", "version", renderVersion)

	// Mutating surfaces (write.go) and virtual-time schedules
	// (schedule.go). Registered even under Options.ReadOnly so clients
	// get a deliberate 403, not a confusing 404.
	s.writeRoutes()

	// Live (uncached) surfaces.
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.metrics))
	s.mux.HandleFunc("/trace", s.instrument("trace", s.trace))
	s.mux.HandleFunc("/events", s.instrument("events", s.events))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.healthz))

	// Post-hoc inspection surfaces.
	s.mux.HandleFunc("/debug/requests", s.instrument("debug_requests", s.debugRequests))
	s.mux.HandleFunc("/debug/trace", s.instrument("debug_trace", s.debugTrace))
	if s.opt.EnablePprof {
		s.registerPprof()
	}
}

// instrument wraps a handler with the request-scoped observability:
// the labeled request counter and latency histogram, the in-flight
// gauge, a per-request trace (W3C traceparent accepted and emitted,
// the trace ID echoed as X-Flowsched-Trace), and a flight record on
// completion. Span trees are retained tail-based: every sampleEvery-th
// request, plus every request at or over the slow threshold.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	latency := s.latency.With(name)
	weight := routeWeight(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.lim != nil && weight > 0 {
			if err := s.lim.acquire(r.Context(), weight); err != nil {
				if errors.Is(err, errShedQueueFull) {
					s.shed.With(name, "queue_full").Inc()
					w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
					http.Error(w, "server overloaded", http.StatusServiceUnavailable)
				} else {
					// The client (or its deadline) gave up while queued.
					s.canceled.With(name).Inc()
					http.Error(w, "request canceled while queued", statusClientClosedRequest)
				}
				return
			}
			defer s.lim.release(weight)
		}
		s.inflight.Add(1)
		start := time.Now()
		if s.opt.DisableRequestObs {
			defer func() {
				s.inflight.Add(-1)
				latency.ObserveDuration(time.Since(start))
			}()
			sw := &statusWriter{ResponseWriter: w}
			h(sw, r)
			s.requests.With(name, "").Inc()
			return
		}

		seq := s.reqSeq.Add(1)
		ri := &reqInfo{tracer: obs.NewTracer(DefaultRequestSpans)}
		if id, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ri.traceID = id
		} else {
			ri.traceID = obs.NewTraceID()
		}
		ri.root = ri.tracer.Start(nil, "serve."+name, s.p.Now())
		w.Header().Set("X-Flowsched-Trace", ri.traceID)
		w.Header().Set("traceparent", obs.FormatTraceparent(ri.traceID))

		sw := &statusWriter{ResponseWriter: w}
		h(sw, withReqInfo(r, ri))
		ri.root.End(s.p.Now())

		elapsed := time.Since(start)
		s.inflight.Add(-1)
		latency.ObserveEx(elapsed.Seconds(), ri.traceID)
		s.requests.With(name, ri.cache).Inc()

		rec := obs.FlightRecord{
			TraceID: ri.traceID, Route: name, Status: sw.status,
			Start: start, Latency: elapsed,
			StoreVersion: ri.version, VirtualNow: ri.vnow, Cache: ri.cache,
			SampledTrials: ri.sampledTrials, ReusedTrials: ri.reusedTrials,
			Error: ri.errMsg,
		}
		keep := s.sampleEvery > 0 && seq%s.sampleEvery == 0
		if s.slowThresh >= 0 && elapsed >= s.slowThresh {
			keep = true
		}
		if keep {
			rec.Spans = ri.tracer.Spans()
			s.traceKeeps.Inc()
		} else {
			s.traceDiscards.Inc()
		}
		s.flight.Record(rec)
	}
}

// handleView registers a snapshot-pinned route: one View per request,
// the memo cache in front of the renderer, and the snapshot identity
// echoed in response headers.
func (s *Server) handleView(pattern, name string, fn renderFunc) {
	s.handleViewFP(pattern, name, nil, fn)
}

// handleViewFP is handleView with an optional fingerprint tier behind
// the per-snapshot memo: when the memo misses (a fresh snapshot), the
// request's input fingerprint is probed before the renderer runs, so a
// store advance that does not change the response's inputs is still a
// cache hit (X-Flowsched-Cache: fingerprint) and re-runs nothing.
func (s *Server) handleViewFP(pattern, name string, fp fingerprintFunc, fn renderFunc) {
	s.mux.HandleFunc(pattern, s.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		proj := s.p
		if fname := r.URL.Query().Get("fork"); fname != "" {
			// Read a fork session's state through the same routes
			// (write.go): a designer inspects a what-if branch with the
			// full read surface before deciding to promote or discard.
			if proj = s.forks.get(fname); proj == nil {
				http.Error(w, fmt.Sprintf("no fork session %q", fname), http.StatusNotFound)
				return
			}
		}
		v, err := proj.View()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		ri := reqInfoFrom(r)
		if ri != nil {
			// Divert the view's span output to the request's tracer,
			// nested under the request root; project metrics keep flowing.
			v = v.CaptureTrace(ri.tracer, ri.root)
			ri.version, ri.vnow = v.Version(), v.Now()
		}
		// Bind the request lifetime to the view: a client disconnect (or
		// the route deadline) cancels the simulation work underneath.
		ctx := r.Context()
		if s.opt.RouteDeadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opt.RouteDeadline)
			defer cancel()
		}
		v = v.WithContext(ctx)
		s.storeVersion.Set(int64(v.Version()))
		w.Header().Set("X-Flowsched-Version", strconv.FormatUint(v.Version(), 10))
		w.Header().Set("X-Flowsched-Now", strconv.FormatInt(v.Now().UnixNano(), 10))

		var body []byte
		var ctype string
		cacheState := "off"
		if s.opt.DisableCache {
			body, ctype, err = fn(v, r)
		} else {
			// The key embeds the full snapshot identity: the store
			// version plus the virtual instant (the clock can tick
			// between store writes, and rendered output shows "now").
			key := fmt.Sprintf("%d.%d|%s?%s", v.Version(), v.Now().UnixNano(), name, canonicalQuery(r))
			var hit, fpHit bool
			// Retry loop: a singleflight follower can inherit the
			// *leader's* cancellation (the leader's client hung up
			// mid-render). When that happens and this request is still
			// live, re-probe the cache — the failed entry was dropped, so
			// the retry renders fresh under this request's own context.
			for {
				body, ctype, hit, err = s.cache.do(v.Version(), key, func() ([]byte, string, error) {
					return s.renderVia(fp, name, v, r, fn, &fpHit)
				})
				if err != nil && !hit &&
					(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) &&
					ctx.Err() == nil {
					continue
				}
				break
			}
			switch {
			case hit:
				cacheState = "hit"
			case fpHit:
				cacheState = "fingerprint"
			default:
				cacheState = "miss"
			}
		}
		w.Header().Set("X-Flowsched-Cache", cacheState)
		if ri != nil {
			ri.cache = cacheState
		}
		if err != nil {
			if ri != nil {
				ri.errMsg = err.Error()
			}
			code := errCode(err)
			switch {
			case errors.Is(err, context.Canceled):
				s.canceled.With(name).Inc()
				code = statusClientClosedRequest
			case errors.Is(err, context.DeadlineExceeded):
				s.canceled.With(name).Inc()
				w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
				code = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	}))
}

// renderVia consults the fingerprint tier around the renderer. A
// fingerprint error (unfingerprintable request — e.g. fault-injection
// what-if edits) falls through to a direct render: the tier never
// gates correctness. fpHit is only written by the singleflight leader,
// which runs this in the requesting goroutine.
func (s *Server) renderVia(fp fingerprintFunc, name string, v *flowsched.ProjectView, r *http.Request, fn renderFunc, fpHit *bool) ([]byte, string, error) {
	if fp == nil {
		return fn(v, r)
	}
	fpr, err := fp(v, r)
	if err != nil {
		return fn(v, r)
	}
	key := name + "?" + canonicalQuery(r) + "|" + fpr
	if body, ctype, ok := s.fp.get(key); ok {
		*fpHit = true
		return body, ctype, nil
	}
	body, ctype, err := fn(v, r)
	if err == nil {
		s.fp.put(key, body, ctype)
	}
	return body, ctype, err
}

// canonicalQuery renders the request's query parameters in sorted-key
// order (value order preserved), so equivalent requests share one memo
// entry regardless of parameter spelling order.
func canonicalQuery(r *http.Request) string {
	q := r.URL.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		for _, val := range q[k] {
			if b.Len() > 0 {
				b.WriteByte('&')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(val)
		}
	}
	return b.String()
}

func jsonBody(v any) ([]byte, string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(b, '\n'), "application/json; charset=utf-8", nil
}

func textBody(t string) ([]byte, string, error) {
	return []byte(t), "text/plain; charset=utf-8", nil
}

// targetsParam resolves the "targets" parameter, defaulting to the
// snapshot plan's targets.
func targetsParam(v *flowsched.ProjectView, r *http.Request) ([]string, error) {
	if t := r.URL.Query().Get("targets"); t != "" {
		return strings.Split(t, ","), nil
	}
	if t := v.Targets(); len(t) > 0 {
		return t, nil
	}
	return nil, badRequest("no targets: pass ?targets=a,b or plan first")
}

func renderStatus(v *flowsched.ProjectView, _ *http.Request) ([]byte, string, error) {
	rows, err := v.Status()
	if err != nil {
		return nil, "", err
	}
	return jsonBody(struct {
		Now         time.Time                  `json:"now"`
		PlanVersion int                        `json:"planVersion"`
		Activities  []flowsched.ActivityStatus `json:"activities"`
	}{v.Now(), v.PlanVersion(), rows})
}

func renderGantt(v *flowsched.ProjectView, _ *http.Request) ([]byte, string, error) {
	chart, err := v.Gantt()
	if err != nil {
		return nil, "", err
	}
	return textBody(chart)
}

func renderTaskTree(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error) {
	targets, err := targetsParam(v, r)
	if err != nil {
		return nil, "", err
	}
	tree, err := v.TaskTreeView(targets...)
	if err != nil {
		return nil, "", err
	}
	return textBody(tree)
}

func renderDashboard(v *flowsched.ProjectView, _ *http.Request) ([]byte, string, error) {
	d, err := v.Dashboard()
	if err != nil {
		return nil, "", err
	}
	return textBody(d)
}

func renderAnalyze(v *flowsched.ProjectView, _ *http.Request) ([]byte, string, error) {
	cpm, err := v.Analyze()
	if err != nil {
		return nil, "", err
	}
	return jsonBody(cpm)
}

func renderMilestones(v *flowsched.ProjectView, _ *http.Request) ([]byte, string, error) {
	rows, err := v.MilestoneReport()
	if err != nil {
		return nil, "", err
	}
	return jsonBody(struct {
		Now        time.Time                   `json:"now"`
		Milestones []flowsched.MilestoneStatus `json:"milestones"`
	}{v.Now(), rows})
}

func renderQuery(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return nil, "", badRequest("missing query: pass ?q=...")
	}
	out, err := v.Query(q)
	if err != nil {
		return nil, "", err
	}
	return textBody(out)
}

func renderReport(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error) {
	to := v.Now()
	from := to.Add(-7 * 24 * time.Hour)
	var err error
	if f := r.URL.Query().Get("from"); f != "" {
		if from, err = time.Parse(time.RFC3339, f); err != nil {
			return nil, "", badRequest("bad from %q: want RFC3339", f)
		}
	}
	if t := r.URL.Query().Get("to"); t != "" {
		if to, err = time.Parse(time.RFC3339, t); err != nil {
			return nil, "", badRequest("bad to %q: want RFC3339", t)
		}
	}
	out, err := v.StatusReport(from, to)
	if err != nil {
		return nil, "", err
	}
	return textBody(out)
}

// riskSummary is the JSON shape of /risk: the distribution summarized,
// not the raw per-trial durations.
type riskSummary struct {
	Targets     []string           `json:"targets"`
	Trials      int                `json:"trials"`
	Seed        int64              `json:"seed"`
	Mean        time.Duration      `json:"mean"`
	P10         time.Duration      `json:"p10"`
	P50         time.Duration      `json:"p50"`
	P80         time.Duration      `json:"p80"`
	P90         time.Duration      `json:"p90"`
	P95         time.Duration      `json:"p95"`
	Criticality map[string]float64 `json:"criticality"`
}

// riskParams is the parsed /risk request, shared between the renderer
// and the fingerprint computation so both describe the same run.
type riskParams struct {
	targets []string
	trials  int
	seed    int64
	workers int
}

func parseRiskParams(v *flowsched.ProjectView, r *http.Request) (riskParams, error) {
	var p riskParams
	var err error
	if p.targets, err = targetsParam(v, r); err != nil {
		return p, err
	}
	if p.trials, err = qInt(r, "trials", 1000); err != nil {
		return p, err
	}
	if p.seed, err = qInt64(r, "seed", 1995); err != nil {
		return p, err
	}
	if p.workers, err = qInt(r, "workers", 0); err != nil {
		return p, err
	}
	return p, nil
}

// riskFingerprint keys /risk responses by the derived risk model and
// sampling configuration — not the store version, because the
// distribution depends only on those inputs (worker count is excluded:
// runs are bit-identical for any worker count).
func riskFingerprint(v *flowsched.ProjectView, r *http.Request) (string, error) {
	p, err := parseRiskParams(v, r)
	if err != nil {
		return "", err
	}
	return v.RiskFingerprint(p.targets, flowsched.RiskOptions{Trials: p.trials, Seed: p.seed})
}

func renderRisk(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error) {
	p, err := parseRiskParams(v, r)
	if err != nil {
		return nil, "", err
	}
	res, err := v.SimulateRiskWith(p.targets, flowsched.RiskOptions{
		Trials: p.trials, Seed: p.seed, Workers: p.workers,
	})
	if err != nil {
		return nil, "", err
	}
	if ri := reqInfoFrom(r); ri != nil {
		ri.sampledTrials = int64(res.SampledActivityTrials)
		ri.reusedTrials = int64(res.ReusedActivityTrials)
	}
	return jsonBody(riskSummary{
		Targets: p.targets, Trials: len(res.Durations), Seed: p.seed,
		Mean: res.Mean(),
		P10:  res.Percentile(0.10), P50: res.Percentile(0.50),
		P80: res.Percentile(0.80), P90: res.Percentile(0.90),
		P95:         res.Percentile(0.95),
		Criticality: res.Criticality,
	})
}

// parseWhatIfParams is the shared /whatif request parsing.
func parseWhatIfParams(v *flowsched.ProjectView, r *http.Request) (targets []string, edits []flowsched.ScenarioEdit, err error) {
	if targets, err = targetsParam(v, r); err != nil {
		return nil, nil, err
	}
	specs := r.URL.Query()["edit"]
	if len(specs) == 0 {
		return nil, nil, badRequest("no scenarios: pass ?edit=name=Act*1.5;Act+3h;parallel (repeatable)")
	}
	edits = make([]flowsched.ScenarioEdit, 0, len(specs))
	for _, spec := range specs {
		e, err := flowsched.ParseScenarioEdit(spec)
		if err != nil {
			return nil, nil, badRequest("%v", err)
		}
		edits = append(edits, e)
	}
	return targets, edits, nil
}

// whatifFingerprint keys /whatif responses by the sweep's full input
// closure (see flowsched.ProjectView.WhatIfFingerprint). Requests the
// view refuses to fingerprint render directly.
func whatifFingerprint(v *flowsched.ProjectView, r *http.Request) (string, error) {
	targets, edits, err := parseWhatIfParams(v, r)
	if err != nil {
		return "", err
	}
	return v.WhatIfFingerprint(targets, edits, flowsched.ScenarioOptions{})
}

func renderWhatIf(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error) {
	targets, edits, err := parseWhatIfParams(v, r)
	if err != nil {
		return nil, "", err
	}
	rep, err := v.Scenarios(targets, edits, flowsched.ScenarioOptions{})
	if err != nil {
		return nil, "", err
	}
	if r.URL.Query().Get("format") == "json" {
		return jsonBody(rep)
	}
	return textBody(rep.Render())
}

func renderPredict(v *flowsched.ProjectView, r *http.Request) ([]byte, string, error) {
	activity := r.URL.Query().Get("activity")
	if activity == "" {
		return nil, "", badRequest("missing activity: pass ?activity=Name")
	}
	alpha, err := qFloat(r, "alpha", 0)
	if err != nil {
		return nil, "", err
	}
	size, err := qFloat(r, "size", 0)
	if err != nil {
		return nil, "", err
	}
	var sizes []float64
	if raw := r.URL.Query().Get("sizes"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			f, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return nil, "", badRequest("bad sizes element %q", part)
			}
			sizes = append(sizes, f)
		}
	}
	pr, err := v.PredictDuration(activity, flowsched.PredictOptions{
		Method: r.URL.Query().Get("method"), Alpha: alpha,
		Size: size, Sizes: sizes,
	})
	if err != nil {
		return nil, "", err
	}
	return jsonBody(pr)
}

func renderVersion(v *flowsched.ProjectView, _ *http.Request) ([]byte, string, error) {
	return jsonBody(struct {
		StoreVersion uint64    `json:"storeVersion"`
		PlanVersion  int       `json:"planVersion"`
		Now          time.Time `json:"now"`
	}{v.Version(), v.PlanVersion(), v.Now()})
}

// metrics serves the server's own registry followed by the project's
// registry in one Prometheus text page.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	s.projDropped.Set(s.p.TraceDropped())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.reg.PromText())
	fmt.Fprint(w, s.p.MetricsText())
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	depth, err := qInt(r, "depth", 0)
	if err != nil {
		http.Error(w, err.Error(), errCode(err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.p.TraceTree(depth))
}

// events serves the event stream in two modes sharing one cursor
// space: the default JSON poll returns the tail past ?since plus the
// "next" cursor to resume from, and SSE (Accept: text/event-stream or
// ?stream=sse) pushes each event as it happens via the broadcast hub,
// with the same cursors as event IDs so Last-Event-ID resumes exactly
// where a poll (or a dropped stream) left off.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	since, err := qInt(r, "since", 0)
	if err != nil {
		http.Error(w, err.Error(), errCode(err))
		return
	}
	if since < 0 {
		// A negative cursor is a client bug (cursor underflow), and
		// silently replaying the whole stream would hide it behind a
		// huge download. Refuse loudly.
		http.Error(w, fmt.Sprintf("bad since %d: cursor must be >= 0", since), http.StatusBadRequest)
		return
	}
	if wantsSSE(r) {
		s.eventsSSE(w, r, since)
		return
	}
	evs := s.p.EventsSince(since)
	if evs == nil {
		evs = []flowsched.Event{}
	}
	body, ctype, err := jsonBody(struct {
		Since  int               `json:"since"`
		Next   int               `json:"next"`
		Events []flowsched.Event `json:"events"`
	}{since, since + len(evs), evs})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// healthz reports the project's real serving state. A quarantined
// project (its WAL failed; see flowsched.Project.Health) is still
// serving reads, but writes are refused — that is "degraded", answered
// with 503 so load balancers and probes stop routing write traffic at
// it while operators still get the full payload.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	h := s.p.Health()
	status, code := "ok", http.StatusOK
	if h.Quarantined {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	body, ctype, err := jsonBody(struct {
		Status      string    `json:"status"`
		Now         time.Time `json:"now"`
		Durable     bool      `json:"durable"`
		Quarantined bool      `json:"quarantined,omitempty"`
		Error       string    `json:"error,omitempty"`
		WALSeq      uint64    `json:"walSeq,omitempty"`
	}{status, s.p.Now(), h.Durable, h.Quarantined, h.Err, h.WALSeq})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(code)
	w.Write(body)
}

func qInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad %s %q: want integer", name, raw)
	}
	return n, nil
}

func qInt64(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, badRequest("bad %s %q: want integer", name, raw)
	}
	return n, nil
}

func qFloat(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("bad %s %q: want number", name, raw)
	}
	return f, nil
}
