package serve

import (
	"sync"

	"flowsched/internal/obs"
)

// fpCache is the fingerprint tier behind the per-snapshot memo: rendered
// bodies keyed by a canonical hash of everything the response depends on
// (route, parameters, derived risk/what-if inputs). Unlike memoCache it
// deliberately survives store-version advances — a mutation that does
// not change a response's fingerprint (a write on an unrelated branch of
// the database) leaves its entry valid, so the next request is answered
// without re-running the simulation at all. Soundness rests entirely on
// the fingerprint: equal fingerprints must mean byte-identical renders
// (see flowsched.ProjectView.RiskFingerprint / WhatIfFingerprint).
type fpCache struct {
	mu      sync.Mutex
	entries map[string]fpBody
	max     int

	hits, misses, evictions *obs.Counter
}

type fpBody struct {
	body  []byte
	ctype string
}

func newFPCache(max int, reg *obs.Registry) *fpCache {
	ev := reg.CounterVec("serve_cache_events_total", "tier", "event")
	return &fpCache{
		entries: make(map[string]fpBody),
		max:     max,
		hits:      ev.With("fingerprint", "hit"),
		misses:    ev.With("fingerprint", "miss"),
		evictions: ev.With("fingerprint", "eviction"),
	}
}

// get returns the memoized body for the fingerprint key. Only probed on
// a per-snapshot memo miss, so the hit counter counts exactly the
// renders the tier saved across snapshots.
func (c *fpCache) get(key string) ([]byte, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, "", false
	}
	c.hits.Inc()
	return e.body, e.ctype, true
}

// put files a rendered body under its fingerprint key. Full: drop
// everything rather than track recency (same policy as memoCache —
// precision would buy little for a bounded response cache).
func (c *fpCache) put(key string, body []byte, ctype string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		c.entries = make(map[string]fpBody)
		c.evictions.Inc()
	}
	c.entries[key] = fpBody{body: body, ctype: ctype}
}
