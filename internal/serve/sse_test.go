package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flowsched"
)

// TestEventsNextCursorEchoesConsumedPosition pins the /events poll
// contract: "next" is the cursor after the returned page — since +
// len(events) — not an echo of the request's since. (The original
// handler echoed since, so every poller replayed the full stream
// forever.)
func TestEventsNextCursorEchoesConsumedPosition(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})

	var page struct {
		Since  int               `json:"since"`
		Next   int               `json:"next"`
		Events []flowsched.Event `json:"events"`
	}
	rec := get(t, s, "/events?since=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) == 0 {
		t.Fatal("tracked project produced no events")
	}
	if page.Next != len(page.Events) {
		t.Fatalf("next = %d, want %d (since + page length)", page.Next, len(page.Events))
	}

	// Polling from next returns an empty page with the same cursor —
	// the poller idles instead of replaying.
	rec = get(t, s, fmt.Sprintf("/events?since=%d", page.Next))
	var again struct {
		Next   int               `json:"next"`
		Events []flowsched.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Events) != 0 || again.Next != page.Next {
		t.Fatalf("poll at head = %d events, next %d; want 0 events, next %d",
			len(again.Events), again.Next, page.Next)
	}

	// A mid-stream cursor pages the remainder only.
	rec = get(t, s, "/events?since=2")
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if want := page.Next; again.Next != want || len(again.Events) != want-2 {
		t.Fatalf("since=2: %d events, next %d; want %d events, next %d",
			len(again.Events), again.Next, want-2, want)
	}

	// EventsPage (the facade twin the hercules poller uses) agrees.
	evs, next := p.EventsPage(0)
	if next != len(evs) || next != page.Next {
		t.Fatalf("EventsPage(0) next = %d over %d events, want %d", next, len(evs), page.Next)
	}
}

// TestEventsNegativeSinceRejected pins the 400 on a negative cursor:
// EventsSince silently clamps to zero, which would hide a client-side
// cursor underflow behind a full-stream replay.
func TestEventsNegativeSinceRejected(t *testing.T) {
	s := New(newTracked(t), Options{})
	rec := get(t, s, "/events?since=-1")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /events?since=-1 = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "cursor must be >= 0") {
		t.Fatalf("400 body does not explain the cursor rule: %s", rec.Body.String())
	}

	// The SSE resume header gets the same treatment.
	req := httptest.NewRequest(http.MethodGet, "/events?stream=sse", nil)
	req.Header.Set("Last-Event-ID", "-3")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("SSE with Last-Event-ID -3 = %d, want 400", rec.Code)
	}
}

// counterValue reads one plain counter off the server's registry.
func counterValue(s *Server, name string) float64 {
	for _, m := range s.Registry().Snapshot() {
		if m.Name == name && m.Labels == nil {
			return m.Value
		}
	}
	return 0
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    int
	event string
	data  string
}

// sseReader incrementally parses an SSE stream.
type sseReader struct {
	br *bufio.Reader
}

func newSSEReader(r io.Reader) *sseReader { return &sseReader{br: bufio.NewReader(r)} }

// next reads one frame, blocking until the blank separator line.
func (sr *sseReader) next() (sseFrame, error) {
	var f sseFrame
	seen := false
	for {
		line, err := sr.br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, nil
			}
		case strings.HasPrefix(line, "id: "):
			seen = true
			f.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			seen = true
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			seen = true
			f.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// openSSE starts one stream against a live test server and returns the
// response (caller closes) plus the parser.
func openSSE(t *testing.T, ts *httptest.Server, path string, lastEventID int) (*http.Response, *sseReader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	res, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		t.Fatalf("GET %s = %d: %s", path, res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return res, newSSEReader(res.Body)
}

// TestSSEReplayThenLive: a stream replays history with 1-based stream
// positions as SSE ids, then pushes each new write's events without
// polling.
func TestSSEReplayThenLive(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.CloseStreams()

	n := p.EventCount()
	res, sr := openSSE(t, ts, "/events?stream=sse", -1)
	defer res.Body.Close()

	for i := 1; i <= n; i++ {
		f, err := sr.next()
		if err != nil {
			t.Fatalf("replay frame %d: %v", i, err)
		}
		if f.id != i || f.event != "flow" {
			t.Fatalf("replay frame = id %d event %q, want id %d event flow", f.id, f.event, i)
		}
		var e flowsched.Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil {
			t.Fatalf("frame %d data is not an Event: %v\n%s", i, err, f.data)
		}
	}

	// A write lands on the open stream with the next position.
	rec := post(t, s, "/import?class=stimuli", "live push")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /import = %d: %s", rec.Code, rec.Body.String())
	}
	f, err := sr.next()
	if err != nil {
		t.Fatalf("live frame: %v", err)
	}
	if f.id != n+1 || !strings.Contains(f.data, "imported") {
		t.Fatalf("live frame = id %d data %s, want id %d with the import event", f.id, f.data, n+1)
	}
}

// TestSSELastEventIDResume: a reconnecting client presents the last id
// it consumed and receives only what it missed.
func TestSSELastEventIDResume(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.CloseStreams()

	n := p.EventCount()
	if n < 2 {
		t.Fatalf("need at least 2 events, have %d", n)
	}
	res, sr := openSSE(t, ts, "/events", n-2)
	defer res.Body.Close()
	for want := n - 1; want <= n; want++ {
		f, err := sr.next()
		if err != nil {
			t.Fatal(err)
		}
		if f.id != want {
			t.Fatalf("resumed frame id = %d, want %d", f.id, want)
		}
	}
}

// TestSSESlowConsumerDropped pins the slow-consumer policy at the hub:
// a subscriber that stops draining is disconnected with reason "slow"
// (to resume via Last-Event-ID) instead of stalling the pump or the
// other streams.
func TestSSESlowConsumerDropped(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{SSEQueue: 1})
	defer s.CloseStreams()

	slow := s.hub.subscribe()
	if slow == nil {
		t.Fatal("subscribe returned nil on a live hub")
	}
	// Never drained: the first event fills the 1-slot queue, the next
	// broadcast drops the subscriber.
	for i := 0; i < 4; i++ {
		if _, err := p.Import("stimuli", []byte(fmt.Sprintf("burst %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-slow.ch:
			if ok {
				continue // drain the queued event; the close follows
			}
			if slow.reason != "slow" {
				t.Fatalf("drop reason = %q, want slow", slow.reason)
			}
			if got := counterValue(s, "serve_sse_slow_dropped_total"); got < 1 {
				t.Fatalf("serve_sse_slow_dropped_total = %v, want >= 1", got)
			}
			return
		case <-deadline:
			t.Fatal("slow subscriber was never dropped")
		}
	}
}

// TestSSEHammerConcurrentWritersAndShutdown is the race recipe for the
// push path: concurrent writers commit through the HTTP surface while
// several SSE subscribers stream, then the server drains. Pins:
//
//   - every accepted write's event reaches every surviving stream
//     exactly once (no loss at the replay/live boundary, no dupes);
//   - fan-out is byte-identical — the same id carries the same bytes
//     on every stream;
//   - drain is bounded: every stream ends with a terminal frame and
//     the test server's Close (which waits for open requests) returns.
func TestSSEHammerConcurrentWritersAndShutdown(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{SSEQueue: 4096})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const subscribers, writers, writesEach = 4, 4, 10

	type streamResult struct {
		frames   map[int]string // id -> data
		terminal string
		err      error
	}
	results := make([]streamResult, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		res, sr := openSSE(t, ts, "/events?stream=sse", -1)
		wg.Add(1)
		go func(i int, res *http.Response, sr *sseReader) {
			defer wg.Done()
			defer res.Body.Close()
			r := streamResult{frames: make(map[int]string)}
			for {
				f, err := sr.next()
				if err != nil {
					r.err = err
					break
				}
				if f.event != "flow" {
					r.terminal = f.event
					break
				}
				if _, dup := r.frames[f.id]; dup {
					r.err = fmt.Errorf("duplicate id %d", f.id)
					break
				}
				r.frames[f.id] = f.data
			}
			results[i] = r
		}(i, res, sr)
	}

	// Writers commit imports; each accepted response names the entity
	// whose creation event must reach every stream.
	accepted := make([][]string, writers)
	var ww sync.WaitGroup
	for i := 0; i < writers; i++ {
		ww.Add(1)
		go func(i int) {
			defer ww.Done()
			for j := 0; j < writesEach; j++ {
				res, err := ts.Client().Post(
					fmt.Sprintf("%s/import?class=stimuli", ts.URL),
					"text/plain", strings.NewReader(fmt.Sprintf("w%d-%d", i, j)))
				if err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
				var out struct {
					ID string `json:"id"`
				}
				blob, _ := io.ReadAll(res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					t.Errorf("writer %d: status %d: %s", i, res.StatusCode, blob)
					return
				}
				if err := json.Unmarshal(blob, &out); err != nil || out.ID == "" {
					t.Errorf("writer %d: bad body %s", i, blob)
					return
				}
				accepted[i] = append(accepted[i], out.ID)
			}
		}(i)
	}
	ww.Wait()

	// Give the pump a beat to fan the tail out, then drain. Shutdown
	// must send every stream its terminal frame and return promptly.
	time.Sleep(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on open SSE streams")
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("subscriber %d: %v", i, r.err)
		}
		if r.terminal != "shutdown" {
			t.Fatalf("subscriber %d terminal = %q, want shutdown", i, r.terminal)
		}
		for w, ids := range accepted {
			for _, id := range ids {
				hits := 0
				for _, data := range r.frames {
					if strings.Contains(data, " as "+id+`"`) {
						hits++
					}
				}
				if hits != 1 {
					t.Fatalf("subscriber %d saw write %s (writer %d) %d times, want exactly 1", i, id, w, hits)
				}
			}
		}
	}
	// Byte-identical fan-out: every stream that carries id k carries
	// the same bytes for it.
	canonical := make(map[int]string)
	for i, r := range results {
		for id, data := range r.frames {
			if want, ok := canonical[id]; ok && want != data {
				t.Fatalf("subscriber %d id %d bytes differ across streams:\n%s\n%s", i, id, data, want)
			}
			canonical[id] = data
		}
	}
}
