package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flowsched"
	"flowsched/internal/host"
	"flowsched/internal/persist"
)

// projTrials reads the project's monte_trials_total counter from its
// Prometheus text exposition.
func projTrials(t *testing.T, p *flowsched.Project) int64 {
	t.Helper()
	m := trialsRe.FindStringSubmatch(p.MetricsText())
	if m == nil {
		return 0
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCanceledRiskStopsSamplingAndFreesSlot: a client that disconnects
// mid-/risk must stop the simulation (the trials counter stops
// advancing short of the request's total) and give its admission slot
// back.
func TestCanceledRiskStopsSamplingAndFreesSlot(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{MaxInFlight: 8, DisableCache: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Shutdown(context.Background())

	const trials = 2_000_000
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/risk?trials=%d&seed=5", l.Addr(), trials), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		res, err := http.DefaultClient.Do(req)
		if err == nil {
			res.Body.Close()
			err = fmt.Errorf("request completed with %d, want cancellation", res.StatusCode)
		}
		done <- err
	}()

	// Wait for sampling to start, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for projTrials(t, p) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulation never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	// The counter must go quiescent short of the full run.
	var last int64
	for stable := 0; stable < 5; {
		n := projTrials(t, p)
		if n == last {
			stable++
		} else {
			stable, last = 0, n
		}
		time.Sleep(10 * time.Millisecond)
		if time.Now().After(deadline) {
			t.Fatal("trials counter never quiesced")
		}
	}
	if last >= trials {
		t.Fatalf("sampled %d trials, want < %d (cancellation ignored)", last, trials)
	}
	// The limiter slot came back: full capacity is grantable again.
	s.lim.mu.Lock()
	used, queued := s.lim.used, len(s.lim.queue)
	s.lim.mu.Unlock()
	if used != 0 || queued != 0 {
		t.Fatalf("limiter leaked: used=%d queued=%d, want 0/0", used, queued)
	}
}

// TestOverloadHammerShedsAndStaysCorrect: with more concurrent heavy
// requests than capacity, overflow sheds as 503 + Retry-After, nothing
// deadlocks, and every 200 is byte-identical to an unloaded run of the
// same request.
func TestOverloadHammerShedsAndStaysCorrect(t *testing.T) {
	p := newTracked(t)

	// Unloaded baseline, one response body per distinct request.
	base := New(p, Options{DisableCache: true})
	const clients = 24
	want := make(map[string][]byte, clients)
	urlOf := func(i int) string {
		return fmt.Sprintf("/risk?trials=20000&seed=%d", 100+i%4)
	}
	for i := 0; i < clients; i++ {
		rec := get(t, base, urlOf(i))
		if rec.Code != http.StatusOK {
			t.Fatalf("baseline %s = %d: %s", urlOf(i), rec.Code, rec.Body.String())
		}
		want[urlOf(i)] = rec.Body.Bytes()
	}

	// The hammer goes over real TCP so client goroutines block on I/O
	// and the server handles them concurrently even on one CPU.
	s := New(p, Options{MaxInFlight: 8, QueueDepth: 2, DisableCache: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Shutdown(context.Background())

	// Fill the limiter before the clients arrive: on one CPU a short
	// render can finish inside a scheduler quantum, so organic arrival
	// overlap is not guaranteed. Holding capacity makes the overflow
	// deterministic — QueueDepth clients wait, the rest shed — and the
	// release below lets the queued ones render and prove byte-identity
	// under load.
	if err := s.lim.acquire(context.Background(), heavyWeight); err != nil {
		t.Fatalf("pre-hold acquire: %v", err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, shed int
	start := make(chan struct{}) // barrier: all clients arrive at once
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := http.Get(fmt.Sprintf("http://%s%s", l.Addr(), urlOf(i)))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			body, rerr := io.ReadAll(res.Body)
			res.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			if rerr != nil {
				t.Errorf("client %d read: %v", i, rerr)
				return
			}
			switch res.StatusCode {
			case http.StatusOK:
				ok++
				if string(body) != string(want[urlOf(i)]) {
					t.Errorf("loaded response for %s differs from unloaded baseline", urlOf(i))
				}
			case http.StatusServiceUnavailable:
				shed++
				if res.Header.Get("Retry-After") == "" {
					t.Error("503 without Retry-After")
				}
			default:
				t.Errorf("unexpected status %d: %s", res.StatusCode, body)
			}
		}(i)
	}
	close(start)

	// With capacity held, exactly QueueDepth clients queue and the
	// remaining 22 overflow. Wait for every shed to land, then release
	// the hold so the queued requests render.
	deadline := time.Now().Add(10 * time.Second)
	for s.shed.With("risk", "queue_full").Value() < int64(clients-2) {
		if time.Now().After(deadline) {
			t.Fatalf("sheds never reached %d (have %d)",
				clients-2, s.shed.With("risk", "queue_full").Value())
		}
		time.Sleep(time.Millisecond)
	}
	s.lim.release(heavyWeight)
	wg.Wait()

	if ok != 2 {
		t.Fatalf("%d requests survived the hammer, want the %d queued ones", ok, 2)
	}
	if shed != clients-2 {
		t.Fatalf("%d requests shed, want %d", shed, clients-2)
	}
	if got := s.shed.With("risk", "queue_full").Value(); got != int64(shed) {
		t.Fatalf("serve_shed_total{risk,queue_full} = %d, want %d", got, shed)
	}
	s.lim.mu.Lock()
	used, queued := s.lim.used, len(s.lim.queue)
	s.lim.mu.Unlock()
	if used != 0 || queued != 0 {
		t.Fatalf("limiter leaked after hammer: used=%d queued=%d", used, queued)
	}
}

// TestSlowlorisReadTimeoutReclaimsConnection: clients that stall before
// finishing their request headers are cut off by ReadTimeout without
// ever reaching a handler, and the in-flight gauge stays at zero.
func TestSlowlorisReadTimeoutReclaimsConnection(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{ReadTimeout: 100 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Shutdown(context.Background())

	const stalled = 4
	conns := make([]net.Conn, stalled)
	for i := range conns {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Half a request line, then silence.
		if _, err := io.WriteString(c, "GET /status HT"); err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		// On ReadTimeout the server rejects the half-request (400/408)
		// and tears the connection down — ReadAll must hit EOF/reset,
		// never our own read deadline, and never a success status.
		data, err := io.ReadAll(c)
		if os.IsTimeout(err) {
			t.Fatalf("conn %d: server never closed the stalled connection", i)
		}
		if strings.Contains(string(data), " 200 ") {
			t.Fatalf("conn %d: half-sent request got a 200: %q", i, data)
		}
	}
	if got := s.inflight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d after slowloris, want 0", got)
	}
}

// TestWriteTimeoutReclaimsSlowResponse: a handler that outlives
// WriteTimeout has its connection torn down (the client sees a
// truncated response) and the in-flight gauge returns to zero.
func TestWriteTimeoutReclaimsSlowResponse(t *testing.T) {
	p := newTracked(t)
	s := New(p, Options{WriteTimeout: 50 * time.Millisecond, DisableCache: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Shutdown(context.Background())

	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /risk?trials=2000000&seed=3 HTTP/1.1\r\nHost: x\r\n\r\n")
	c.SetReadDeadline(time.Now().Add(30 * time.Second))
	// The write deadline expires while the simulation runs; the server's
	// response write then fails and the connection closes — the client
	// must observe EOF rather than a parseable complete response.
	if _, err := io.ReadAll(c); err != nil && !errors.Is(err, io.EOF) {
		if os.IsTimeout(err) {
			t.Fatal("server kept the connection open past WriteTimeout")
		}
		// Connection reset is also a valid teardown observation.
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.inflight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge stuck at %d", s.inflight.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// toggleFS is an FS seam whose writes can be switched off at runtime —
// the serving-tier twin of the host package's disk-death fixture.
type toggleFS struct {
	persist.OSFS
	fail bool
	mu   sync.Mutex
}

func (f *toggleFS) setFail(v bool) { f.mu.Lock(); f.fail = v; f.mu.Unlock() }
func (f *toggleFS) failing() bool  { f.mu.Lock(); defer f.mu.Unlock(); return f.fail }

func (f *toggleFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	fl, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &toggleFile{File: fl, fs: f}, nil
}

type toggleFile struct {
	persist.File
	fs *toggleFS
}

func (f *toggleFile) Write(p []byte) (int, error) {
	if f.fs.failing() {
		return 0, errors.New("togglefs: disk gone")
	}
	return f.File.Write(p)
}

// TestHostHealthzQuarantineAndReopen drives the full degraded-state
// story over HTTP: a WAL fault quarantines a tenant, both healthz
// variants turn degraded (503) while reads keep serving, and the
// operator's POST /p/{id}/reopen restores ok.
func TestHostHealthzQuarantineAndReopen(t *testing.T) {
	ffs := &toggleFS{}
	h, err := NewHost(host.Options{
		Root:    t.TempDir(),
		Persist: flowsched.PersistOptions{NoSync: true, FS: ffs},
		Project: flowsched.Options{Designer: "ewj"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())
	seedProject(t, h, "alpha")

	if rec := hostGet(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d: %s", rec.Code, rec.Body.String())
	}

	// Disk dies under alpha; the next write quarantines it.
	ffs.setFail(true)
	hd, err := h.Projects().Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	werr := hd.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("lost"))
		return err
	})
	hd.Release()
	if !errors.Is(werr, flowsched.ErrQuarantined) {
		t.Fatalf("write on dead disk = %v, want ErrQuarantined", werr)
	}

	rec := hostGet(t, h, "/p/alpha/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined project /healthz = %d, want 503", rec.Code)
	}
	for _, want := range []string{`"status": "degraded"`, `"quarantined": true`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("project healthz missing %q:\n%s", want, rec.Body.String())
		}
	}
	rec = hostGet(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("host /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"alpha"`) {
		t.Fatalf("host healthz does not name the quarantined project:\n%s", rec.Body.String())
	}
	// Reads keep serving the last committed snapshot.
	if rec := hostGet(t, h, "/p/alpha/status"); rec.Code != http.StatusOK {
		t.Fatalf("read on quarantined project = %d: %s", rec.Code, rec.Body.String())
	}

	// Disk recovers; the operator reopens the tenant.
	ffs.setFail(false)
	req := httptest.NewRequest(http.MethodPost, "/p/alpha/reopen", nil)
	rr := httptest.NewRecorder()
	h.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("reopen = %d: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), `"quarantined": false`) {
		t.Fatalf("reopen response still quarantined:\n%s", rr.Body.String())
	}
	if rec := hostGet(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("post-reopen /healthz = %d: %s", rec.Code, rec.Body.String())
	}
	// And the tenant accepts writes again.
	hd, err = h.Projects().Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer hd.Release()
	if err := hd.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("back"))
		return err
	}); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}

// TestTenantQuotaSheds: per-project token buckets shed a hot tenant
// with 503 + Retry-After while its neighbors keep being served, and
// refill restores service.
func TestTenantQuotaSheds(t *testing.T) {
	h := newHost(t, t.TempDir(), Options{TenantRate: 1, TenantBurst: 2})
	seedProject(t, h, "hot")
	seedProject(t, h, "cold")
	now := time.Unix(800_000_000, 0)
	var nowMu sync.Mutex
	h.tb.now = func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }

	for i := 0; i < 2; i++ {
		if rec := hostGet(t, h, "/p/hot/version"); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d = %d", i, rec.Code)
		}
	}
	rec := hostGet(t, h, "/p/hot/version")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-quota request = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("tenant shed without Retry-After")
	}
	if got := h.shed.With("version", "tenant_quota").Value(); got == 0 {
		t.Fatal("serve_shed_total{version,tenant_quota} not incremented")
	}
	// The neighbor is unaffected.
	if rec := hostGet(t, h, "/p/cold/version"); rec.Code != http.StatusOK {
		t.Fatalf("neighbor request = %d, want 200", rec.Code)
	}
	// Refill: two seconds buys two tokens at rate 1/s.
	nowMu.Lock()
	now = now.Add(2 * time.Second)
	nowMu.Unlock()
	if rec := hostGet(t, h, "/p/hot/version"); rec.Code != http.StatusOK {
		t.Fatalf("post-refill request = %d, want 200", rec.Code)
	}
}
