package serve

import (
	"context"
	"errors"
	"sync"

	"flowsched/internal/obs"
)

// Route weights for the admission limiter. Admission is capacity-based,
// not count-based: a simulation-heavy route consumes heavyWeight units
// of Options.MaxInFlight while cheap snapshot reads consume one, so one
// budget bounds total work rather than request count. Operational
// surfaces (metrics, health, debugging) weigh zero — an overloaded
// server must stay observable, or the operator cannot see why it is
// shedding.
const (
	lightWeight = 1
	planWeight  = 4
	heavyWeight = 8
)

// routeWeight maps a route name to its admission weight.
func routeWeight(name string) int64 {
	switch name {
	case "risk", "whatif":
		return heavyWeight
	// Writes are admission-weighted by the work behind them: a run
	// executes the flow (as heavy as a simulation), a plan simulates
	// scheduling, the bookkeeping writes cost a read's unit. /events
	// stays free — SSE streams park for hours and must not hold
	// admission units; their cost is bounded by the hub's queues.
	case "run":
		return heavyWeight
	case "plan":
		return planWeight
	case "track", "complete", "import", "milestone", "propagate", "edit", "fork":
		return lightWeight
	case "metrics", "healthz", "trace", "events", "debug_requests", "debug_trace", "schedules":
		return 0
	}
	return lightWeight
}

// errShedQueueFull is returned by acquire when the wait queue is at
// capacity: the request is shed immediately rather than queued behind
// work the server already cannot keep up with.
var errShedQueueFull = errors.New("serve: admission queue full")

// limiter is a weighted semaphore with a bounded FIFO wait queue.
// Requests whose weight fits run immediately; otherwise they queue (up
// to maxQueue) and are granted strictly in arrival order — no
// barging, so a stream of cheap requests cannot starve a queued heavy
// one. A request whose context ends while queued leaves the queue and
// never holds capacity.
type limiter struct {
	capacity int64
	maxQueue int

	mu    sync.Mutex
	used  int64
	queue []*waiter

	depth *obs.Gauge // serve_queue_depth
}

type waiter struct {
	weight  int64
	ready   chan struct{}
	granted bool // guarded by limiter.mu
}

func newLimiter(capacity int64, maxQueue int, depth *obs.Gauge) *limiter {
	if capacity <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{capacity: capacity, maxQueue: maxQueue, depth: depth}
}

// acquire blocks until weight units are granted, the queue overflows
// (errShedQueueFull), or ctx ends (ctx.Err()). A weight above the total
// capacity is clamped: the heaviest request can always run, alone.
func (l *limiter) acquire(ctx context.Context, weight int64) error {
	if l == nil || weight <= 0 {
		return nil
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	if len(l.queue) == 0 && l.used+weight <= l.capacity {
		l.used += weight
		l.mu.Unlock()
		return nil
	}
	if len(l.queue) >= l.maxQueue {
		l.mu.Unlock()
		return errShedQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.depth.Set(int64(len(l.queue)))
	l.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed between ctx ending and the
			// lock. Give the capacity back rather than serve a dead
			// request.
			l.used -= w.weight
			l.grantLocked()
			l.mu.Unlock()
			return ctx.Err()
		}
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		l.depth.Set(int64(len(l.queue)))
		l.mu.Unlock()
		return ctx.Err()
	}
}

// release returns weight units and wakes queued waiters in FIFO order.
func (l *limiter) release(weight int64) {
	if l == nil || weight <= 0 {
		return
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	l.used -= weight
	l.grantLocked()
	l.mu.Unlock()
}

func (l *limiter) grantLocked() {
	for len(l.queue) > 0 {
		w := l.queue[0]
		if l.used+w.weight > l.capacity {
			break
		}
		l.used += w.weight
		w.granted = true
		l.queue = l.queue[1:]
		close(w.ready)
	}
	l.depth.Set(int64(len(l.queue)))
}
