package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Options tunes a Log. The zero value is production-ready.
type Options struct {
	// SegmentBytes is the roll threshold: when a segment grows past it,
	// the next append starts a new segment. Default 4 MiB.
	SegmentBytes int64
	// NoSync skips the fsync after each append (and after checkpoint
	// installation). Recovery correctness is unaffected — the clean
	// prefix is still detected — but a power loss may lose recently
	// acknowledged records. For tests and benchmarks.
	NoSync bool
	// FS is the filesystem the log writes through. Nil selects the real
	// one (OSFS); tests inject FaultFS to exercise the disk-fault
	// contract.
	FS FS
}

const defaultSegmentBytes = 4 << 20

// checkpointName is the atomically-installed checkpoint file.
const checkpointName = "checkpoint.json"

// ErrLogFailed marks a log that has gone sticky-failed: a write-path
// disk operation failed, so the bytes on disk past the last
// acknowledged record are indeterminate and the log refuses to write
// another byte. Reads (Checkpoint, Seq, FootprintBytes) keep working;
// recovery is a fresh Open + Replay, which truncates to the clean
// prefix. Every error returned from a failed log wraps this sentinel.
var ErrLogFailed = errors.New("persist: log failed; no further writes accepted")

// checkpointFile is the on-disk checkpoint wrapper: the payload (opaque
// to the log), the sequence number it covers, and a CRC over the payload.
type checkpointFile struct {
	Seq     uint64          `json:"seq"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// Log is a segmented write-ahead log in one directory. Methods are safe
// for concurrent use, though the intended discipline is a single writer:
// appends happen from the owning project's executing goroutine.
//
// Lifecycle: Open, then Replay exactly once (it establishes the live
// sequence and discards any torn tail), then Append/WriteCheckpoint
// freely, then Close.
//
// Failure is sticky: the first failed append, sync, or checkpoint
// operation poisons the log (see ErrLogFailed). This is not caution for
// its own sake — after a failed frame write or fsync the on-disk state
// is indeterminate, and a subsequent append would either interleave
// bytes into a torn frame or reuse the unacknowledged sequence number,
// both of which can make recovery silently drop a record that *was*
// acknowledged. A failed log never writes another byte.
type Log struct {
	dir string
	opt Options
	fs  FS

	mu       sync.Mutex
	replayed bool
	closed   bool
	failed   error  // first write-path failure; sticky
	seq      uint64 // last assigned or recovered sequence
	cpSeq    uint64 // sequence covered by the installed checkpoint
	cp       json.RawMessage
	f        File // open tail segment, nil until first append
	w        *bufio.Writer
	segBytes int64
}

// Open opens or creates the log directory and loads the checkpoint if
// one is installed. It does not read the record stream — call Replay.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if opt.FS == nil {
		opt.FS = OSFS{}
	}
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, fs: opt.FS}
	b, err := l.fs.ReadFile(filepath.Join(dir, checkpointName))
	switch {
	case err == nil:
		var cp checkpointFile
		if err := json.Unmarshal(b, &cp); err != nil {
			return nil, fmt.Errorf("persist: checkpoint %s corrupt: %w",
				filepath.Join(dir, checkpointName), err)
		}
		if crc32.ChecksumIEEE(cp.Payload) != cp.CRC {
			return nil, fmt.Errorf("persist: checkpoint %s failed its checksum",
				filepath.Join(dir, checkpointName))
		}
		l.cpSeq, l.cp, l.seq = cp.Seq, cp.Payload, cp.Seq
	case errors.Is(err, iofs.ErrNotExist):
		// Fresh log, or crash before the first checkpoint.
	default:
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	// A crash between writing checkpoint.json.tmp and the rename leaves
	// the tmp behind; it was never installed, so discard it.
	l.fs.Remove(filepath.Join(dir, checkpointName+".tmp"))
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Checkpoint returns the installed checkpoint payload and the sequence
// number it covers; ok is false if no checkpoint is installed.
func (l *Log) Checkpoint() (payload []byte, seq uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cp == nil {
		return nil, 0, false
	}
	return l.cp, l.cpSeq, true
}

// Seq returns the last assigned (or recovered) record sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Failed returns the sticky failure, or nil while the log is healthy.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// failLocked records the first write-path failure and drops the open
// segment without flushing: the buffered tail bytes must never reach
// the disk after an indeterminate frame. Returns err for convenience.
func (l *Log) failLocked(err error) error {
	if l.failed == nil {
		l.failed = err
		if l.f != nil {
			l.f.Close()
			l.f, l.w, l.segBytes = nil, nil, 0
		}
	}
	return err
}

// errFailedLocked is the error every write on a failed log returns.
func (l *Log) errFailedLocked() error {
	return fmt.Errorf("%w (%s: %v)", ErrLogFailed, l.dir, l.failed)
}

// segments lists the segment files in ascending first-sequence order
// (names are zero-padded, so lexical order is numeric order).
func (l *Log) segments() ([]string, error) {
	ents, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segs = append(segs, filepath.Join(l.dir, n))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016d.seg", firstSeq)
}

// Replay streams the clean record prefix to fn, in sequence order,
// establishing the live sequence number for subsequent appends. It must
// be called exactly once, after Open and before the first Append.
//
// Recovery semantics: records covered by the checkpoint (seq ≤ its
// covered sequence, possible after a crash between checkpoint
// installation and segment deletion) are skipped silently. The first
// unreadable frame — torn tail, checksum mismatch, undecodable record,
// or sequence gap — ends the stream: the damaged segment is truncated at
// the last clean record, later segments are deleted, and Replay returns
// the number of records delivered. A non-nil error from fn aborts replay
// and is returned verbatim; the log is then unusable.
func (l *Log) Replay(fn func(*Record) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed {
		return 0, fmt.Errorf("persist: Replay called twice on %s", l.dir)
	}
	segs, err := l.segments()
	if err != nil {
		return 0, fmt.Errorf("persist: replay %s: %w", l.dir, err)
	}
	delivered := 0
	for i, seg := range segs {
		clean, n, err := l.replaySegment(seg, fn)
		delivered += n
		if err != nil {
			return delivered, err
		}
		if clean >= 0 {
			// Damage inside this segment: discard the tail and every
			// later segment — they are past the clean prefix.
			if err := l.fs.Truncate(seg, clean); err != nil {
				return delivered, fmt.Errorf("persist: truncate torn tail of %s: %w", seg, err)
			}
			for _, later := range segs[i+1:] {
				if err := l.fs.Remove(later); err != nil {
					return delivered, fmt.Errorf("persist: drop %s past torn tail: %w", later, err)
				}
			}
			break
		}
	}
	l.replayed = true
	return delivered, nil
}

// replaySegment reads one segment. It returns clean = -1 if the segment
// was fully readable, or the byte offset of the first damaged frame. A
// non-nil error is a callback or I/O failure, not corruption.
func (l *Log) replaySegment(path string, fn func(*Record) error) (clean int64, n int, err error) {
	f, err := l.fs.Open(path)
	if err != nil {
		return -1, 0, fmt.Errorf("persist: replay %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			return -1, n, nil
		}
		if err != nil {
			return off, n, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return off, n, nil
		}
		switch {
		case rec.Seq <= l.cpSeq:
			// Covered by the checkpoint (crash between checkpoint
			// installation and segment deletion): already durable.
		case rec.Seq != l.seq+1:
			// Sequence gap — a lost or reordered record; everything
			// from here on is past the clean prefix.
			return off, n, nil
		default:
			l.seq = rec.Seq
			if fn != nil {
				if err := fn(&rec); err != nil {
					return -1, n, err
				}
			}
			n++
		}
		off += frameHeader + int64(len(payload))
	}
}

// Append assigns the next sequence number to r, frames it, writes it to
// the tail segment, and — unless Options.NoSync — fsyncs before
// returning. Returns the assigned sequence.
//
// A frame is acknowledged only after every byte is on disk (and synced);
// any failure before that poisons the log (ErrLogFailed) without
// advancing the sequence, so a recovered log's clean prefix always
// contains exactly the acknowledged appends and never a later one.
func (l *Log) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("persist: append to closed log %s", l.dir)
	}
	if l.failed != nil {
		return 0, l.errFailedLocked()
	}
	if !l.replayed {
		return 0, fmt.Errorf("persist: append to %s before Replay", l.dir)
	}
	r.Seq = l.seq + 1
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("persist: marshal record %d: %w", r.Seq, err)
	}
	if l.f == nil {
		if err := l.openSegmentLocked(r.Seq); err != nil {
			return 0, l.failLocked(err)
		}
	}
	if err := writeFrame(l.w, payload); err != nil {
		return 0, l.failLocked(fmt.Errorf("persist: append record %d: %w", r.Seq, err))
	}
	if err := l.w.Flush(); err != nil {
		return 0, l.failLocked(fmt.Errorf("persist: append record %d: %w", r.Seq, err))
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			return 0, l.failLocked(fmt.Errorf("persist: sync record %d: %w", r.Seq, err))
		}
	}
	l.seq = r.Seq
	l.segBytes += frameHeader + int64(len(payload))
	if l.segBytes >= l.opt.SegmentBytes {
		if err := l.closeSegmentLocked(); err != nil {
			// The record itself is durable; only the segment roll
			// failed. The append is acknowledged, the log is poisoned.
			l.failLocked(err)
		}
	}
	return r.Seq, nil
}

// openSegmentLocked starts a fresh segment whose name carries the first
// sequence it will hold. Appends after a reopen start a new segment
// rather than extending the recovered tail — simpler, and the recovered
// tail stays exactly as replay validated it.
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(l.dir, segmentName(firstSeq))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: open segment: %w", err)
	}
	l.f, l.w, l.segBytes = f, bufio.NewWriter(f), st.Size()
	return nil
}

func (l *Log) closeSegmentLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	err := l.f.Close()
	l.f, l.w, l.segBytes = nil, nil, 0
	return err
}

// WriteCheckpoint atomically installs payload as a checkpoint covering
// every record appended so far, then deletes the covered segments. The
// caller guarantees payload captures the project state as of the last
// append — writers must be quiesced across the state capture and this
// call (the host's per-project lock provides exactly that).
//
// Crash safety: the checkpoint is written to a temporary file, fsynced,
// and renamed into place before any segment is deleted. A crash before
// the rename recovers from the old checkpoint plus the full record
// stream; a crash after it recovers from the new checkpoint, skipping
// any not-yet-deleted segments' covered records by sequence number.
//
// Failure safety: any disk failure poisons the log (ErrLogFailed). A
// failure before the rename leaves the old checkpoint installed and
// every segment intact (the temporary file is removed), so a fresh Open
// recovers everything; a failure after the rename leaves the new
// checkpoint installed with possibly-undeleted covered segments, which
// replay skips by sequence number.
func (l *Log) WriteCheckpoint(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("persist: checkpoint on closed log %s", l.dir)
	}
	if l.failed != nil {
		return l.errFailedLocked()
	}
	if !l.replayed {
		return fmt.Errorf("persist: checkpoint on %s before Replay", l.dir)
	}
	if err := l.closeSegmentLocked(); err != nil {
		return l.failLocked(fmt.Errorf("persist: checkpoint %s: %w", l.dir, err))
	}
	cp := checkpointFile{Seq: l.seq, CRC: crc32.ChecksumIEEE(payload), Payload: payload}
	b, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("persist: checkpoint %s: %w", l.dir, err)
	}
	final := filepath.Join(l.dir, checkpointName)
	tmp := final + ".tmp"
	if err := l.writeTmpLocked(tmp, b); err != nil {
		// The temporary file was never installed; clean it up so a
		// later recovery does not have to.
		l.fs.Remove(tmp)
		return l.failLocked(err)
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		l.fs.Remove(tmp)
		return l.failLocked(fmt.Errorf("persist: install checkpoint %s: %w", l.dir, err))
	}
	l.syncDir()
	l.cpSeq, l.cp = l.seq, append(json.RawMessage(nil), payload...)
	// Every existing segment is now covered; drop them all. The next
	// append starts a fresh segment at seq+1.
	segs, err := l.segments()
	if err != nil {
		return l.failLocked(fmt.Errorf("persist: checkpoint %s: %w", l.dir, err))
	}
	for _, seg := range segs {
		if err := l.fs.Remove(seg); err != nil {
			return l.failLocked(fmt.Errorf("persist: drop covered segment %s: %w", seg, err))
		}
	}
	l.syncDir()
	return nil
}

// writeTmpLocked writes and fsyncs the checkpoint's temporary file.
func (l *Log) writeTmpLocked(tmp string, b []byte) error {
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: checkpoint %s: %w", l.dir, err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("persist: checkpoint %s: %w", l.dir, err)
	}
	if !l.opt.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: checkpoint %s: %w", l.dir, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: checkpoint %s: %w", l.dir, err)
	}
	return nil
}

// syncDir fsyncs the log directory so renames and unlinks are durable.
// Best-effort: some filesystems reject directory fsync.
func (l *Log) syncDir() {
	if l.opt.NoSync {
		return
	}
	if d, err := l.fs.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// SinceCheckpoint reports how many records the log holds past the
// installed checkpoint — the replay debt a recovery would pay.
func (l *Log) SinceCheckpoint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - l.cpSeq
}

// FootprintBytes reports the log's on-disk size: checkpoint plus live
// segments.
func (l *Log) FootprintBytes() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	ents, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// Close flushes and closes the tail segment. The log cannot be used
// afterwards. Closing a failed log releases the file handle without
// flushing (the sticky contract: no byte is ever written after a
// failure) and reports success — the failure already surfaced.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.failed != nil {
		if l.f != nil {
			l.f.Close()
			l.f, l.w, l.segBytes = nil, nil, 0
		}
		return nil
	}
	if err := l.closeSegmentLocked(); err != nil {
		return fmt.Errorf("persist: close %s: %w", l.dir, err)
	}
	return nil
}
