package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"flowsched/internal/store"
)

// chaosRecord is the deterministic record content for append i of a
// seeded chaos workload. Bit-identity of recovered records is checked
// against its marshaled form.
func chaosRecord(seed int64, i int) *Record {
	return &Record{
		Now:  t0.Add(time.Duration(seed*1000+int64(i)) * time.Second),
		Kind: RecStore,
		Store: &store.Mutation{
			Kind: store.MutPayload, Version: uint64(i + 1),
			ID:      fmt.Sprintf("chaos/%d/%d", seed, i),
			Payload: json.RawMessage(fmt.Sprintf(`{"seed":%d,"i":%d}`, seed, i)),
		},
	}
}

func chaosCheckpointPayload(seed int64, seq uint64) []byte {
	return []byte(fmt.Sprintf(`{"seed":%d,"seq":%d}`, seed, seq))
}

// chaosPlan is a deterministic workload: opAppend entries interleaved
// with opCheckpoint entries, derived from the seed with the package's
// own mixer.
type chaosOp int

const (
	opAppend chaosOp = iota
	opCheckpoint
)

func chaosPlan(seed int64) []chaosOp {
	h := mixFault(uint64(seed) * 0x9e3779b97f4a7c15)
	n := 8 + int(h%9) // 8..16 appends
	var plan []chaosOp
	appended := 0
	for appended < n {
		plan = append(plan, opAppend)
		appended++
		h = mixFault(h)
		if h%5 == 0 { // ~1 in 5 appends is followed by a checkpoint
			plan = append(plan, opCheckpoint)
		}
	}
	return plan
}

// chaosResult captures what a workload execution acknowledged.
type chaosResult struct {
	ackedAppends int      // appends that returned nil (always a prefix)
	cpSeqs       []uint64 // seqs of checkpoint attempts, acked or not
	firstErr     error    // first error any Log call returned
	stickyViol   string   // non-empty if a post-failure call did not fail
}

// execChaos runs the seeded plan against a log on fs. After the first
// error every subsequent call must fail with ErrLogFailed — anything
// else is a sticky-contract violation, reported rather than fatal so
// the caller can attribute it to the (seed, op-index) under test.
func execChaos(dir string, fs FS, seed int64, sync bool) chaosResult {
	var res chaosResult
	opt := Options{SegmentBytes: 256, NoSync: !sync, FS: fs}
	l, err := Open(dir, opt)
	if err != nil {
		res.firstErr = err
		return res
	}
	if _, err := l.Replay(nil); err != nil {
		res.firstErr = err
		return res
	}
	next := 0
	for _, op := range planOps(seed) {
		var err error
		switch op {
		case opAppend:
			_, err = l.Append(chaosRecord(seed, next))
			if err == nil {
				next++
				res.ackedAppends = next
			}
		case opCheckpoint:
			seq := l.Seq()
			res.cpSeqs = append(res.cpSeqs, seq)
			err = l.WriteCheckpoint(chaosCheckpointPayload(seed, seq))
		}
		if res.firstErr == nil {
			res.firstErr = err
		} else if err == nil || !errors.Is(err, ErrLogFailed) {
			res.stickyViol = fmt.Sprintf("op after failure %v returned %v, want ErrLogFailed", res.firstErr, err)
		}
	}
	crash(l)
	return res
}

func planOps(seed int64) []chaosOp { return chaosPlan(seed) }

// crash abandons a log the way a process death would: the file handle
// goes away with no flush, no sync, no checkpoint. (Appends flush per
// record, so closing the raw handle writes nothing extra.)
func crash(l *Log) {
	l.mu.Lock()
	if l.f != nil {
		l.f.Close()
		l.f, l.w = nil, nil
	}
	l.closed = true
	l.mu.Unlock()
}

// verifyRecovery reopens dir with the real filesystem and checks the
// chaos invariants: every acked append survives bit-identically (via
// replay or checkpoint coverage), the recovered tail holds at most one
// trailing unacknowledged record, and an installed checkpoint matches a
// checkpoint the workload actually attempted.
func verifyRecovery(t *testing.T, dir string, seed int64, res chaosResult) {
	t.Helper()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer l.Close()
	cp, cpSeq, hasCP := l.Checkpoint()
	if hasCP {
		ok := false
		for _, s := range res.cpSeqs {
			if s == cpSeq {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("recovered checkpoint covers seq %d, but no checkpoint was attempted there (%v)", cpSeq, res.cpSeqs)
		}
		if want := chaosCheckpointPayload(seed, cpSeq); string(cp) != string(want) {
			t.Fatalf("checkpoint payload = %s, want %s", cp, want)
		}
		if cpSeq > uint64(res.ackedAppends) {
			t.Fatalf("checkpoint covers seq %d beyond %d acked appends", cpSeq, res.ackedAppends)
		}
	}
	var recs []Record
	if _, err := l.Replay(func(r *Record) error {
		recs = append(recs, *r)
		return nil
	}); err != nil {
		t.Fatalf("recovery replay: %v", err)
	}
	// Replay yields the contiguous range cpSeq+1 .. lastSeq. Everything
	// acked must be covered; at most one trailing unacked record (a
	// fully-written frame whose fsync failed) may also survive.
	last := cpSeq + uint64(len(recs))
	if last < uint64(res.ackedAppends) {
		t.Fatalf("recovered through seq %d, but %d appends were acknowledged — an acked write was dropped", last, res.ackedAppends)
	}
	if last > uint64(res.ackedAppends)+1 {
		t.Fatalf("recovered through seq %d, but only %d appends acked (+1 indeterminate allowed)", last, res.ackedAppends)
	}
	for i, r := range recs {
		wantSeq := cpSeq + uint64(i) + 1
		if r.Seq != wantSeq {
			t.Fatalf("replayed record %d has seq %d, want %d", i, r.Seq, wantSeq)
		}
		want := chaosRecord(seed, int(wantSeq)-1)
		want.Seq = wantSeq
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(&r)
		if string(gb) != string(wb) {
			t.Fatalf("record seq %d not bit-identical:\n got %s\nwant %s", wantSeq, gb, wb)
		}
	}
	// Post-recovery the log is healthy again: it accepts appends.
	if _, err := l.Append(chaosRecord(seed, int(last))); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestDiskChaos is the disk-fault property harness: 100 seeded
// workloads, each re-run with a single injected fault at op indexes
// striding across the workload's mutating operations (collectively
// covering every index), then crashed and recovered. Recovery must
// equal the clean prefix bit-identically, never drop an acknowledged
// append, and the faulted log must honor the sticky-failure contract.
func TestDiskChaos(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// Clean counting pass measures the workload's op budget.
			count := NewFaultFS(OSFS{}, seed)
			clean := execChaos(t.TempDir(), count, seed, false)
			if clean.firstErr != nil {
				t.Fatalf("clean pass failed: %v", clean.firstErr)
			}
			ops := count.Ops()
			const stride = 3
			for idx := int64(s % stride); idx < ops; idx += stride {
				dir := t.TempDir()
				ffs := NewFaultFS(OSFS{}, seed)
				ffs.FailAt(idx)
				res := execChaos(dir, ffs, seed, false)
				if res.stickyViol != "" {
					t.Fatalf("fault@%d (%s): %s", idx, ffs.InjectedKind(), res.stickyViol)
				}
				if !ffs.Injected() {
					t.Fatalf("fault@%d never fired (ops=%d)", idx, ffs.Ops())
				}
				verifyRecovery(t, dir, seed, res)
			}
		})
	}
}

// TestDiskChaosSyncFaults runs the harness with fsync enabled so
// sync-fail faults (indeterminate durability — the poisonous case) are
// exercised too. Fewer seeds: every op here costs a real fsync.
func TestDiskChaosSyncFaults(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			count := NewFaultFS(OSFS{}, seed)
			clean := execChaos(t.TempDir(), count, seed, true)
			if clean.firstErr != nil {
				t.Fatalf("clean pass failed: %v", clean.firstErr)
			}
			ops := count.Ops()
			const stride = 5
			for idx := int64(s % stride); idx < ops; idx += stride {
				dir := t.TempDir()
				ffs := NewFaultFS(OSFS{}, seed)
				ffs.FailAt(idx)
				res := execChaos(dir, ffs, seed, true)
				if res.stickyViol != "" {
					t.Fatalf("fault@%d (%s): %s", idx, ffs.InjectedKind(), res.stickyViol)
				}
				verifyRecovery(t, dir, seed, res)
			}
		})
	}
}

// TestAppendFailureIsSticky pins the regression the fault model exposed:
// a failed append must poison the log. Before the fix, Append returned
// the error but left the log writable with an unadvanced sequence
// number, so the next append wrote a duplicate-sequence frame after the
// indeterminate one — recovery then treated the duplicate as a gap and
// silently dropped writes that had been acknowledged.
func TestAppendFailureIsSticky(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OSFS{}, seed)
			// Op 0 is Open's stale-tmp Remove; with NoSync each append
			// is one Write. Fault append #2's frame write.
			ffs.FailAt(2)
			l, err := Open(dir, Options{NoSync: true, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Replay(nil); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append(testRecord(1)); err != nil {
				t.Fatalf("append 1: %v", err)
			}
			_, err = l.Append(testRecord(2))
			if err == nil {
				t.Fatal("append 2 succeeded despite injected write fault")
			}
			if errors.Is(err, ErrLogFailed) {
				t.Fatal("first failure should carry the injected error, not the sticky sentinel")
			}
			if l.Failed() == nil {
				t.Fatal("Failed() = nil after a write fault")
			}
			// The log must refuse every further write.
			if _, err := l.Append(testRecord(3)); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("append after failure = %v, want ErrLogFailed", err)
			}
			if err := l.WriteCheckpoint([]byte(`{}`)); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("checkpoint after failure = %v, want ErrLogFailed", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close of failed log: %v", err)
			}
			// Recovery: append 1 survives, nothing after it, and the log
			// is writable again.
			re, recs := replayAll(t, dir, Options{NoSync: true})
			defer re.Close()
			if len(recs) != 1 || recs[0].Seq != 1 {
				t.Fatalf("recovered %d records, want exactly seq 1", len(recs))
			}
			if _, err := re.Append(testRecord(2)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		})
	}
}

// TestCheckpointENOSPCMidWrite drives WriteCheckpoint into an ENOSPC
// while writing the temporary checkpoint file: the tmp must be cleaned
// up, the previously installed checkpoint must still load, and the
// covered segments must not have been truncated — a fresh open recovers
// every acknowledged record.
func TestCheckpointENOSPCMidWrite(t *testing.T) {
	// Find a seed whose write-fault kind at the tmp-write op index is
	// ENOSPC. Op layout with NoSync: 0 = stale-tmp Remove, 1..6 =
	// appends, 7 = checkpoint tmp write (first checkpoint: 8 = rename).
	const tmpWriteOp = 7
	opIdx := uint64(tmpWriteOp)
	seed := int64(-1)
	for s := int64(0); s < 64; s++ {
		h := mixFault(uint64(s) ^ opIdx*0x9e3779b97f4a7c15)
		if [3]int32{faultEIO, faultShortWrite, faultENOSPC}[h%3] == faultENOSPC {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed yields ENOSPC at the tmp-write op; widen the search")
	}

	dir := t.TempDir()
	// First, install a good checkpoint covering 3 records, then append
	// 3 more — all on the real filesystem.
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 3)
	if err := l.WriteCheckpoint([]byte(`{"good":1}`)); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen under the fault FS and attempt a second checkpoint.
	ffs := NewFaultFS(OSFS{}, seed)
	ffs.FailAt(tmpWriteOp)
	fl, err := Open(dir, Options{NoSync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := fl.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records past checkpoint, want 3", n)
	}
	appendN(t, fl, 7, 6) // ops 1..6
	err = fl.WriteCheckpoint([]byte(`{"bad":1}`))
	if err == nil {
		t.Fatal("checkpoint succeeded despite injected ENOSPC")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint error = %v, want ENOSPC (injected kind %s)", err, ffs.InjectedKind())
	}
	if err := fl.WriteCheckpoint([]byte(`{"bad":2}`)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("checkpoint after failure = %v, want ErrLogFailed", err)
	}
	crash(fl)

	// The aborted tmp must not linger.
	if _, err := os.Stat(filepath.Join(dir, checkpointName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint tmp still present after failed write (stat err %v)", err)
	}
	// The old checkpoint still loads and the segments were not touched:
	// recovery yields every acknowledged record (seq 4..12 past the
	// checkpoint's coverage of 1..3).
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	cp, cpSeq, ok := re.Checkpoint()
	if !ok || string(cp) != `{"good":1}` || cpSeq != 3 {
		t.Fatalf("recovered checkpoint = %q seq %d ok %v, want {\"good\":1} seq 3", cp, cpSeq, ok)
	}
	n = 0
	if _, err := re.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("recovered %d records past checkpoint, want 9", n)
	}
	if re.Seq() != 12 {
		t.Fatalf("recovered seq = %d, want 12", re.Seq())
	}
}

// TestCheckpointRenameFaultKeepsOldCheckpoint: a failed rename must
// leave the old checkpoint installed and the tmp cleaned up.
func TestCheckpointRenameFaultKeepsOldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 2)
	if err := l.WriteCheckpoint([]byte(`{"good":1}`)); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	ffs := NewFaultFS(OSFS{}, 1)
	// Ops: 0 = stale-tmp Remove, 1..2 = appends, 3 = tmp write, 4 = rename.
	ffs.FailAt(4)
	fl, err := Open(dir, Options{NoSync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Replay(nil); err != nil {
		t.Fatal(err)
	}
	appendN(t, fl, 5, 2)
	if err := fl.WriteCheckpoint([]byte(`{"bad":1}`)); !errors.Is(err, ErrInjected) {
		t.Fatalf("checkpoint = %v, want injected rename fault", err)
	}
	if ffs.InjectedKind() != "rename-fail" {
		t.Fatalf("injected kind = %s, want rename-fail", ffs.InjectedKind())
	}
	crash(fl)

	if _, err := os.Stat(filepath.Join(dir, checkpointName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint tmp still present after failed rename (stat err %v)", err)
	}
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if cp, cpSeq, ok := re.Checkpoint(); !ok || string(cp) != `{"good":1}` || cpSeq != 2 {
		t.Fatalf("recovered checkpoint = %q seq %d ok %v, want old checkpoint at seq 2", cp, cpSeq, ok)
	}
	n := 0
	if _, err := re.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recovered %d records past checkpoint, want 4", n)
	}
}
