package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowsched/internal/store"
)

var t0 = time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)

func testRecord(i int) *Record {
	return &Record{
		Now:  t0.Add(time.Duration(i) * time.Minute),
		Kind: RecStore,
		Store: &store.Mutation{
			Kind: store.MutPayload, Version: uint64(i),
			ID: fmt.Sprintf("netlist/%d", i), Payload: json.RawMessage(`{"i":` + fmt.Sprint(i) + `}`),
		},
	}
}

func openReplayed(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, dir string, opt Options) (*Log, []Record) {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if _, err := l.Replay(func(r *Record) error {
		recs = append(recs, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 25)
	if l.Seq() != 25 {
		t.Fatalf("seq = %d, want 25", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, recs := replayAll(t, dir, Options{NoSync: true})
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Store == nil || r.Store.ID != fmt.Sprintf("netlist/%d", i+1) {
			t.Fatalf("record %d body mismatch: %+v", i, r.Store)
		}
		if !r.Now.Equal(t0.Add(time.Duration(i+1) * time.Minute)) {
			t.Fatalf("record %d Now = %v", i, r.Now)
		}
	}
	// Appends continue the sequence after a reopen.
	appendN(t, re, 26, 5)
	if re.Seq() != 30 {
		t.Fatalf("seq after reopen-append = %d, want 30", re.Seq())
	}
	re.Close()
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true, SegmentBytes: 256})
	appendN(t, l, 1, 40)
	l.Close()
	segs, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments with a 256-byte roll threshold", len(segs))
	}
	_, recs := replayAll(t, dir, Options{NoSync: true})
	if len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}
}

func TestTornTailDiscarded(t *testing.T) {
	for cut := 1; cut <= 12; cut++ {
		dir := t.TempDir()
		l := openReplayed(t, dir, Options{NoSync: true})
		appendN(t, l, 1, 3)
		l.Close()
		segs, _ := l.segments()
		if len(segs) != 1 {
			t.Fatal("expected a single segment")
		}
		// Emulate a crash mid-write: chop `cut` bytes off the tail.
		b, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if cut >= len(b) {
			break
		}
		if err := os.WriteFile(segs[0], b[:len(b)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, recs := replayAll(t, dir, Options{NoSync: true})
		if len(recs) != 2 {
			t.Fatalf("cut %d: replayed %d records, want clean prefix of 2", cut, len(recs))
		}
		// The torn tail is discarded: new appends extend the clean prefix.
		appendN(t, re, 3, 1)
		re.Close()
		_, recs2 := replayAll(t, dir, Options{NoSync: true})
		if len(recs2) != 3 || recs2[2].Seq != 3 {
			t.Fatalf("cut %d: after repair got %d records", cut, len(recs2))
		}
	}
}

func TestBitFlipEndsCleanPrefix(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 5)
	l.Close()
	segs, _ := l.segments()
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit two-thirds in: some record's payload or header no
	// longer checksums; everything after it is discarded.
	pos := 2 * len(b) / 3
	b[pos] ^= 0x40
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := replayAll(t, dir, Options{NoSync: true})
	if len(recs) >= 5 {
		t.Fatalf("bit flip survived: %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("recovered prefix not clean: record %d has seq %d", i, r.Seq)
		}
	}
}

func TestSequenceGapEndsCleanPrefix(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true, SegmentBytes: 128})
	appendN(t, l, 1, 10)
	l.Close()
	segs, _ := l.segments()
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Lose a middle segment: the records after the hole must not replay.
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, recs := replayAll(t, dir, Options{NoSync: true})
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("gap leaked: record %d has seq %d", i, r.Seq)
		}
	}
	if len(recs) >= 10 {
		t.Fatal("records past a sequence gap were replayed")
	}
	// The segments past the gap were dropped from disk.
	left, _ := l.segments()
	if len(left) >= len(segs)-1 {
		t.Fatalf("%d segments remain after gap repair", len(left))
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true, SegmentBytes: 128})
	appendN(t, l, 1, 10)
	state := []byte(`{"projected":"state","records":10}`)
	if err := l.WriteCheckpoint(state); err != nil {
		t.Fatal(err)
	}
	segs, _ := l.segments()
	if len(segs) != 0 {
		t.Fatalf("%d segments survive a covering checkpoint", len(segs))
	}
	if l.SinceCheckpoint() != 0 {
		t.Fatalf("SinceCheckpoint = %d after checkpoint", l.SinceCheckpoint())
	}
	appendN(t, l, 11, 4)
	if l.SinceCheckpoint() != 4 {
		t.Fatalf("SinceCheckpoint = %d, want 4", l.SinceCheckpoint())
	}
	l.Close()

	re, recs := replayAll(t, dir, Options{NoSync: true})
	cp, seq, ok := re.Checkpoint()
	if !ok || seq != 10 || string(cp) != string(state) {
		t.Fatalf("checkpoint = %q @%d ok=%v", cp, seq, ok)
	}
	if len(recs) != 4 || recs[0].Seq != 11 {
		t.Fatalf("replayed %d records after checkpoint", len(recs))
	}
	if re.Seq() != 14 {
		t.Fatalf("seq = %d, want 14", re.Seq())
	}
	re.Close()
}

func TestCrashBetweenCheckpointAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 6)
	l.Close()
	segs, _ := l.segments()
	seg := segs[0]
	kept, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint, then resurrect the covered segment — as if the process
	// died after the rename but before the unlink.
	l2 := openReplayed(t, dir, Options{NoSync: true})
	if err := l2.WriteCheckpoint([]byte(`"cp"`)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if err := os.WriteFile(seg, kept, 0o644); err != nil {
		t.Fatal(err)
	}
	re, recs := replayAll(t, dir, Options{NoSync: true})
	if len(recs) != 0 {
		t.Fatalf("covered records replayed: %d", len(recs))
	}
	if re.Seq() != 6 {
		t.Fatalf("seq = %d, want 6 from checkpoint", re.Seq())
	}
	appendN(t, re, 7, 1)
	re.Close()
	_, recs2 := replayAll(t, dir, Options{NoSync: true})
	if len(recs2) != 1 || recs2[0].Seq != 7 {
		t.Fatalf("post-crash append not recovered: %+v", recs2)
	}
}

func TestStaleCheckpointTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 3)
	l.Close()
	// A crash mid-checkpoint leaves a tmp file; it was never installed.
	if err := os.WriteFile(filepath.Join(dir, checkpointName+".tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, recs := replayAll(t, dir, Options{NoSync: true})
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if _, _, ok := re.Checkpoint(); ok {
		t.Fatal("uninstalled checkpoint surfaced")
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint tmp not cleaned up")
	}
	re.Close()
}

func TestCorruptCheckpointRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 3)
	if err := l.WriteCheckpoint([]byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, checkpointName)
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestLifecycleGuards(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord(1)); err == nil {
		t.Fatal("append before Replay accepted")
	}
	if err := l.WriteCheckpoint(nil); err == nil {
		t.Fatal("checkpoint before Replay accepted")
	}
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(nil); err == nil {
		t.Fatal("second Replay accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord(1)); err == nil {
		t.Fatal("append after Close accepted")
	}
}

func TestFootprintBytes(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, Options{NoSync: true})
	appendN(t, l, 1, 8)
	n, err := l.FootprintBytes()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("zero footprint with live segments")
	}
	l.Close()
}
