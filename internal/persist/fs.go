package persist

import (
	"io/fs"
	"os"
)

// FS is the filesystem seam the log writes through. Production uses the
// osFS default; tests inject fault-returning implementations (FaultFS)
// to prove the log's disk-fault contract: after any failed write-path
// operation the log goes sticky-failed and never writes another byte,
// so recovery always finds either the pre-fault clean prefix or the
// pre-fault prefix plus the one indeterminate frame — never interleaved
// garbage.
//
// The surface is exactly what wal.go needs, nothing speculative.
type FS interface {
	// OpenFile opens for writing (segments, checkpoint tmp files).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading (replay, directory fsync).
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
}

// File is the open-file surface of FS.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// OSFS is the production FS: a zero-size passthrough to package os.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OSFS) Open(name string) (File, error)             { return os.Open(name) }
func (OSFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OSFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error              { return os.Remove(name) }
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
