package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format: 4-byte big-endian payload length, 4-byte big-endian
// IEEE CRC32 of the payload, payload bytes. The CRC covers only the
// payload; a corrupted length field is caught by the length bound or by
// the CRC of whatever the bogus length framed.

// maxFrame bounds a single record. A corrupt length field must not make
// recovery allocate gigabytes; real records are a few hundred bytes to a
// few megabytes (design-data blobs).
const maxFrame = 64 << 20

const frameHeader = 8

// errTorn marks a frame that cannot be trusted: short header, short
// payload, oversized length, or checksum mismatch. Recovery treats it as
// the end of the clean prefix.
var errTorn = errors.New("persist: torn or corrupt frame")

func writeFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("persist: record of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. It returns io.EOF at a clean segment end and
// errTorn for anything unreadable — including a trailing partial frame
// from a crash mid-write.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn // partial header
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn // partial payload
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, errTorn
	}
	return payload, nil
}
