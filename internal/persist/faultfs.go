package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"
	"syscall"
)

// FaultFS wraps a base FS and injects exactly one disk fault at a
// chosen mutating-operation index, deterministically per (seed,
// op-index) — the persist-layer sibling of internal/fault's seeded tool
// faults. Mutating operations (Write, Sync, Rename, Remove, Truncate)
// are counted in issue order; a clean pass with no fault armed measures
// a workload's op count, and a chaos harness then replays the same
// workload once per index with the fault armed there.
//
// The fault kind is derived from the seed and index but always matched
// to the faulting op: a Write faults as an outright EIO, a short write,
// or ENOSPC after a partial write; a Sync reports failure (leaving the
// written bytes in an indeterminate durability state — exactly the case
// the log must treat as poisonous); a Rename fails without renaming;
// Remove and Truncate fail outright. The fault fires once — later ops
// pass through — so a test that observes writes after the fault is
// catching the log failing its sticky contract, not the disk staying
// broken.
type FaultFS struct {
	base   FS
	seed   int64
	ops    atomic.Int64
	failAt int64 // armed mutating-op index; -1 = count only

	injected atomic.Bool
	kind     atomic.Int32
}

// Injected fault kinds (reported by InjectedKind).
const (
	faultEIO = iota + 1
	faultShortWrite
	faultENOSPC
	faultSyncFail
	faultRenameFail
)

var faultNames = map[int32]string{
	faultEIO:        "eio",
	faultShortWrite: "short-write",
	faultENOSPC:     "enospc",
	faultSyncFail:   "sync-fail",
	faultRenameFail: "rename-fail",
}

// ErrInjected is the base error of every injected fault (ENOSPC faults
// additionally wrap syscall.ENOSPC).
var ErrInjected = errors.New("persist: injected disk fault")

// NewFaultFS wraps base in counting-only mode; arm a fault with FailAt.
func NewFaultFS(base FS, seed int64) *FaultFS {
	if base == nil {
		base = OSFS{}
	}
	return &FaultFS{base: base, seed: seed, failAt: -1}
}

// FailAt arms the single fault at the op-index'th mutating operation
// (0-based). Call before issuing any operations.
func (f *FaultFS) FailAt(op int64) { f.failAt = op }

// Ops reports how many mutating operations have been issued.
func (f *FaultFS) Ops() int64 { return f.ops.Load() }

// Injected reports whether the armed fault has fired.
func (f *FaultFS) Injected() bool { return f.injected.Load() }

// InjectedKind names the fired fault ("" before it fires).
func (f *FaultFS) InjectedKind() string { return faultNames[f.kind.Load()] }

// decide counts one mutating op and returns the fault kind to inject
// (0 = none). choices are the kinds applicable to this op type.
func (f *FaultFS) decide(choices ...int32) int32 {
	idx := f.ops.Add(1) - 1
	if idx != f.failAt {
		return 0
	}
	h := mixFault(uint64(f.seed) ^ uint64(idx)*0x9e3779b97f4a7c15)
	k := choices[h%uint64(len(choices))]
	f.kind.Store(k)
	f.injected.Store(true)
	return k
}

// mixFault is the splitmix64 finalizer, the repo's standard seed mixer.
func mixFault(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func injectedErr(kind int32) error {
	if kind == faultENOSPC {
		return fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %s", ErrInjected, faultNames[kind])
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return f.base.ReadDir(name)
}
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if k := f.decide(faultRenameFail); k != 0 {
		return injectedErr(k)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if k := f.decide(faultEIO); k != 0 {
		return injectedErr(k)
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if k := f.decide(faultEIO); k != 0 {
		return injectedErr(k)
	}
	return f.base.Truncate(name, size)
}

// faultFile threads Write and Sync through the owning FaultFS's op
// counter; reads pass through untouched.
type faultFile struct {
	f  File
	fs *FaultFS
}

func (ff *faultFile) Read(p []byte) (int, error)    { return ff.f.Read(p) }
func (ff *faultFile) Stat() (os.FileInfo, error)    { return ff.f.Stat() }
func (ff *faultFile) Close() error                  { return ff.f.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	switch k := ff.fs.decide(faultEIO, faultShortWrite, faultENOSPC); k {
	case faultEIO:
		return 0, injectedErr(k)
	case faultShortWrite, faultENOSPC:
		// A prefix of the bytes lands on disk — the torn-frame case.
		n := len(p) / 2
		if n > 0 {
			if m, err := ff.f.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, injectedErr(k)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if k := ff.fs.decide(faultSyncFail); k != 0 {
		// The bytes were written but their durability is indeterminate —
		// they may or may not survive a power loss. The log must treat
		// the frame as poisoned either way.
		return injectedErr(k)
	}
	return ff.f.Sync()
}
