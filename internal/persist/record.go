// Package persist implements the durable backbone of the multi-project
// host: an append-only, checksummed, segmented write-ahead log plus an
// atomically-installed checkpoint.
//
// The design exploits the task database's existing immutable
// clone-and-swap discipline (package store): every committed mutation is
// already a small, self-contained value, so logging is "serialize the
// commit feed" and recovery is "replay the feed against an empty
// database" — replay = rebuild. Periodic checkpoints bound replay time:
// a checkpoint captures the full project state, covers every record
// appended so far, and lets the covered segments be deleted.
//
// # Record stream
//
// Records carry a dense global sequence number (1, 2, 3, …) and the
// virtual-clock reading at append time. Four kinds cover everything a
// project commits: a task-database mutation (store.Mutation verbatim), a
// design-data insert, an engine event, and a plan selection. The stream
// is totally ordered — execution is single-goroutine, so store mutations
// and events interleave exactly as they happened.
//
// # Durability contract
//
// Append returns after the record is framed, CRC-checksummed, written,
// and (unless Options.NoSync) fsynced. On recovery the log yields the
// longest clean prefix of the stream: framing or checksum damage, a torn
// final record, or a sequence gap ends replay there and the tail is
// discarded — never a partially-applied mutation. See docs/persistence.md
// for the on-disk format.
package persist

import (
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/store"
)

// RecordKind classifies a WAL record.
type RecordKind string

const (
	// RecStore is a committed task-database mutation.
	RecStore RecordKind = "store"
	// RecData is an actual insert into the design-data store
	// (deduplicated puts never reach the log).
	RecData RecordKind = "data"
	// RecEvent is an engine event emission.
	RecEvent RecordKind = "event"
	// RecPlan is a schedule-plan selection (the facade's tracked plan).
	RecPlan RecordKind = "plan"
)

// Record is one entry of the write-ahead log. Exactly one of the
// kind-specific bodies is set, matching Kind.
type Record struct {
	// Seq is the dense global sequence number, assigned by Append.
	Seq uint64 `json:"seq"`
	// Now is the project's virtual clock at append time. The clock is
	// monotonic and appends happen in commit order, so the last record's
	// Now recovers the clock after replay.
	Now  time.Time  `json:"now"`
	Kind RecordKind `json:"kind"`

	Store *store.Mutation `json:"store,omitempty"`
	Data  *DataPut        `json:"data,omitempty"`
	Event *engine.Event   `json:"event,omitempty"`
	Plan  *PlanRecord     `json:"plan,omitempty"`
}

// DataPut records one design-data insert. Replaying the inserts in order
// against an empty design store reproduces every version chain and
// content address (Put assigns versions densely and hashes content).
type DataPut struct {
	Class    string    `json:"class"`
	Producer string    `json:"producer,omitempty"`
	Created  time.Time `json:"created"`
	Bytes    []byte    `json:"bytes"` // base64 in JSON
}

// PlanRecord records which schedule plan became the tracked plan.
type PlanRecord struct {
	// Version is the plan's sched.Space version.
	Version int `json:"version"`
}
