// Package flowsched is a design flow management system with integrated
// design schedule management, reproducing Johnson & Brockman,
// "Incorporating Design Schedule Management into a Flow Management
// System", DAC 1995.
//
// A Project owns one design process: a task schema (Level 1 of the
// four-level flow-management architecture), the flow model instantiated
// from it (Level 2), a task database holding both execution metadata and
// schedule instances (Level 3), and the design data itself (Level 4).
// The paper's central idea is available as Plan: a design schedule is
// derived by simulating the execution of the flow, and actual execution
// (Run) is then tracked against it automatically — task starts recorded
// when the first data instance appears, final data linked to schedule
// instances on completion, slips propagated through the remaining plan.
//
// A minimal session:
//
//	p, _ := flowsched.New(flowsched.Fig4Schema, flowsched.Options{Designer: "ewj"})
//	p.UseSimulatedTools()
//	p.Import("stimuli", []byte("pulse 0 5 1ns"))
//	plan, _ := p.Plan([]string{"performance"},
//	    flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{})
//	p.Run([]string{"performance"}, true)
//	fmt.Println(p.Gantt())
//	_ = plan
package flowsched

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/engine"
	"flowsched/internal/export"
	"flowsched/internal/fault"
	"flowsched/internal/flow"
	"flowsched/internal/hier"
	"flowsched/internal/level"
	"flowsched/internal/monte"
	"flowsched/internal/obs"
	"flowsched/internal/persist"
	"flowsched/internal/pert"
	"flowsched/internal/query"
	"flowsched/internal/report"
	"flowsched/internal/scenario"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// Re-exported model types. The internal packages implement the four-level
// architecture; these aliases are the library's public vocabulary.
type (
	// Schema is a Level 1 task schema.
	Schema = schema.Schema
	// Tree is an extracted Level 2 task tree.
	Tree = flow.Tree
	// Calendar models working time.
	Calendar = vclock.Calendar
	// Plan is one schedule-planning pass (a versioned proposed schedule).
	Plan = sched.Plan
	// Instance is one Level 3 schedule instance.
	Instance = sched.Instance
	// ActivityStatus is a plan-versus-actual status row.
	ActivityStatus = sched.ActivityStatus
	// PlanOptions tunes planning (resources, lineage, constraints).
	PlanOptions = sched.PlanOptions
	// Estimator supplies activity duration estimates.
	Estimator = sched.Estimator
	// Fixed estimates from a table ("designer's intuition").
	Fixed = sched.Fixed
	// PERT estimates from three-point values.
	PERT = sched.PERT
	// ThreePoint is a PERT (optimistic, likely, pessimistic) triple.
	ThreePoint = sched.ThreePoint
	// Historical estimates from measured prior executions.
	Historical = sched.Historical
	// Tool is a runnable CAD tool instance.
	Tool = tools.Tool
	// ToolProfile parameterizes a simulated tool.
	ToolProfile = tools.Profile
	// Event is one workflow-manager event.
	Event = engine.Event
	// MetricSnapshot is one observability metric's point-in-time value.
	MetricSnapshot = obs.MetricSnapshot
	// Span is one finished dual-clock trace span (wall + virtual time).
	Span = obs.SpanData
	// FlightRecord is one wide flight-recorder record of a completed
	// operation (see Project.FlightRecords).
	FlightRecord = obs.FlightRecord
	// ExecResult summarizes a task execution.
	ExecResult = engine.ExecResult
	// CPMResult is a critical-path analysis of a plan.
	CPMResult = pert.Result
	// Recovery is an execution's fault-tolerance policy: retry backoff,
	// run deadlines, tool failover, output verification, graceful
	// degradation.
	Recovery = engine.Recovery
	// Backoff is an exponential virtual-time retry policy.
	Backoff = engine.Backoff
	// ActivityFailedError is the typed terminal failure of one activity
	// (recovery policy exhausted).
	ActivityFailedError = engine.ActivityFailedError
	// ExecError is the typed failure of an execution: it carries the last
	// consistent store snapshot and a Resume path that re-runs zero
	// completed activities.
	ExecError = engine.ExecError
	// FaultConfig parameterizes a seeded, replayable fault-injection plan.
	FaultConfig = fault.Config
	// FaultInjection is one recorded fault decision (the replay log).
	FaultInjection = fault.Injection
)

// Fig4Schema is the paper's Fig. 4 example schema (see workload package).
const Fig4Schema = workload.Fig4Source

// ASICSchema is a realistic RTL-to-signoff flow.
const ASICSchema = workload.ASICSource

// BoardSchema is a printed-circuit-board design flow.
const BoardSchema = workload.BoardSource

// AnalogSchema is an analog/mixed-signal block flow.
const AnalogSchema = workload.AnalogSource

// StandardCalendar returns the Monday–Friday 09:00–17:00 calendar.
func StandardCalendar() *Calendar { return vclock.Standard() }

// ContinuousCalendar returns a 24×7 calendar.
func ContinuousCalendar() *Calendar { return vclock.Continuous() }

// ParseSchema parses the construction-rule DSL (see internal/schema).
func ParseSchema(src string) (*Schema, error) { return schema.Parse(src) }

// NewSimTool builds a deterministic simulated tool instance.
func NewSimTool(class, instance string, p ToolProfile) (Tool, error) {
	return tools.NewSim(class, instance, p)
}

// ObsOptions controls a project's observability layer.
type ObsOptions struct {
	// Enabled turns on the metrics registry and the dual-clock span
	// tracer. Off by default: an uninstrumented project pays only nil
	// checks on the instrumented paths.
	Enabled bool
	// MaxSpans bounds the retained trace spans; <= 0 selects
	// obs.DefaultMaxSpans (16384). Spans past the bound are dropped and
	// counted (see TraceDropped).
	MaxSpans int
}

// Options configures a new Project.
type Options struct {
	// Designer is recorded on runs and entity instances. Default "designer".
	Designer string
	// Start is the project start on the virtual clock. Default vclock.Epoch
	// (Monday 1995-06-05 09:00 UTC).
	Start time.Time
	// Calendar is the working calendar. Default StandardCalendar.
	Calendar *Calendar
	// Obs enables metrics and tracing (see Metrics, MetricsText,
	// TraceSpans, TraceTree).
	Obs ObsOptions
}

// Project is a design process under integrated flow + schedule management.
type Project struct {
	mgr    *engine.Manager
	plan   *Plan       // current tracked plan, nil before first Plan
	obs    *obs.Obs    // nil unless Options.Obs.Enabled
	faults *fault.Plan // nil unless InjectFaults
	// riskMemo caches per-subtree Monte-Carlo trial streams across the
	// project's risk analyses (and, shared by pointer, its forks' — the
	// memo keys on subtree content, so reuse across forks is sound).
	riskMemo *monte.Memo
	// flight retains wide records of the project's expensive facade
	// operations (risk, what-if) for post-hoc inspection; nil unless
	// Options.Obs.Enabled.
	flight *obs.FlightRecorder
	// rec bridges the change feeds to the write-ahead log; nil unless the
	// project was opened with Open. Forks are never durable.
	rec             *recorder
	checkpointEvery uint64
}

// New creates a project from schema DSL source.
func New(schemaSrc string, opt Options) (*Project, error) {
	sch, err := schema.Parse(schemaSrc)
	if err != nil {
		return nil, err
	}
	return NewFromSchema(sch, opt)
}

// NewFromSchema creates a project from an already-built schema.
func NewFromSchema(sch *Schema, opt Options) (*Project, error) {
	if opt.Designer == "" {
		opt.Designer = "designer"
	}
	if opt.Start.IsZero() {
		opt.Start = vclock.Epoch
	}
	if opt.Calendar == nil {
		opt.Calendar = vclock.Standard()
	}
	m, err := engine.New(sch, opt.Calendar, opt.Start, opt.Designer)
	if err != nil {
		return nil, err
	}
	p := &Project{mgr: m, riskMemo: monte.NewMemo(0)}
	if opt.Obs.Enabled {
		p.enableObs(opt.Obs)
	}
	return p, nil
}

// enableObs wires the project's observability: a metrics registry, a
// span tracer with an explicit capacity (obs.DefaultMaxSpans unless
// overridden), and the flight recorder that retains wide records of
// the facade's expensive operations.
func (p *Project) enableObs(o ObsOptions) {
	maxSpans := o.MaxSpans
	if maxSpans <= 0 {
		maxSpans = obs.DefaultMaxSpans
	}
	p.obs = obs.NewWith(obs.NewRegistry(), obs.NewTracer(maxSpans))
	p.flight = obs.NewFlightRecorder(0, 0)
	p.flight.Instrument(p.obs.Metrics(), "flight")
	p.mgr.Instrument(p.obs)
}

// recordFlight files one completed facade operation with the flight
// recorder (a no-op on uninstrumented projects).
func (p *Project) recordFlight(op string, start time.Time, res *RiskResult, err error) {
	if p.flight == nil {
		return
	}
	rec := obs.FlightRecord{
		TraceID: obs.NewTraceID(), Route: op, Start: start,
		Latency:    time.Since(start),
		VirtualNow: p.Now(), StoreVersion: p.mgr.DB.Version(),
	}
	if res != nil {
		rec.SampledTrials, rec.ReusedTrials = res.SampledActivityTrials, res.ReusedActivityTrials
	}
	if err != nil {
		rec.Error = err.Error()
	}
	p.flight.Record(rec)
}

// FlightRecords returns the project's flight-recorder tiers: the most
// recent facade operations (newest first) and the slowest retained
// ones (slowest first). Both are nil unless observability is enabled.
func (p *Project) FlightRecords() (recent, slowest []FlightRecord) {
	return p.flight.Snapshot()
}

// FlightText renders the flight recorder as an aligned text table.
func (p *Project) FlightText() string {
	recent, slowest := p.flight.Snapshot()
	return obs.RenderFlight(recent, slowest)
}

// Schema returns the project's task schema.
func (p *Project) Schema() *Schema { return p.mgr.Schema }

// Now reports the project's current virtual time.
func (p *Project) Now() time.Time { return p.mgr.Clock.Now() }

// Calendar returns the project's working calendar.
func (p *Project) Calendar() *Calendar { return p.mgr.Calendar }

// Import files external design data for a primary-input class and returns
// the entity instance ID.
func (p *Project) Import(class string, data []byte) (string, error) {
	e, err := p.mgr.Import(class, data)
	if err != nil {
		return "", err
	}
	return e.ID, p.commitDurable()
}

// UseSimulatedTools binds a default simulated tool to every activity that
// lacks one.
func (p *Project) UseSimulatedTools() error { return p.mgr.BindDefaults() }

// BindTool binds a tool instance to an activity, replacing any previous
// bindings including failover alternates. With faults injected, the new
// binding is wrapped into the fault plan.
func (p *Project) BindTool(activity string, t Tool) error {
	if p.faults != nil {
		t = p.faults.Wrap(activity, t, p.mgr.Clock.Now)
	}
	return p.mgr.BindTool(activity, t)
}

// AddAlternateTool appends a failover tool instance for an activity. The
// first bound instance stays active; Recovery.Failover rotates to
// alternates when runs keep failing. With faults injected, the alternate
// is wrapped into the fault plan.
func (p *Project) AddAlternateTool(activity string, t Tool) error {
	if p.mgr.Schema.RuleByActivity(activity) == nil {
		return fmt.Errorf("flowsched: unknown activity %q", activity)
	}
	if p.faults != nil {
		t = p.faults.Wrap(activity, t, p.mgr.Clock.Now)
	}
	return p.mgr.Tools.AddAlternate(activity, t)
}

// InjectFaults arms a seeded, replayable fault-injection plan: every
// currently bound tool instance (alternates included) is wrapped so its
// runs can crash, hang, corrupt output, or hit license-loss windows, as
// drawn deterministically from the config's seed. Bind tools first;
// bindings added afterwards through BindTool/AddAlternateTool are wrapped
// automatically. Calling InjectFaults again replaces the plan. With
// project observability enabled, injected faults feed fault_injected_*
// counters.
func (p *Project) InjectFaults(cfg FaultConfig) error {
	fp, err := fault.NewPlan(cfg)
	if err != nil {
		return err
	}
	fp.Instrument(p.obs)
	if err := fp.WrapRegistry(p.mgr.Tools, p.mgr.Clock.Now); err != nil {
		return err
	}
	p.faults = fp
	return nil
}

// FaultHistory returns every fault decision made so far, including
// pass-throughs — the replay log of the armed fault plan. Nil without
// InjectFaults.
func (p *Project) FaultHistory() []FaultInjection {
	if p.faults == nil {
		return nil
	}
	return p.faults.History()
}

// FaultsInjected counts the non-pass-through fault decisions so far.
func (p *Project) FaultsInjected() int {
	if p.faults == nil {
		return 0
	}
	return p.faults.Injected()
}

// ExtractTree extracts the task tree covering the target data classes.
func (p *Project) ExtractTree(targets ...string) (*Tree, error) {
	return p.mgr.ExtractTree(targets...)
}

// Plan derives a schedule for the targets by simulating the flow's
// execution from the current virtual time (paper §III). Each call creates
// a new plan version; the newest plan is tracked by subsequent Run calls.
// When a previous plan exists it is recorded as this plan's ancestor
// (schedule metadata lineage).
func (p *Project) Plan(targets []string, est Estimator, opt PlanOptions) (*Plan, error) {
	tree, err := p.mgr.ExtractTree(targets...)
	if err != nil {
		return nil, err
	}
	if p.plan != nil && len(opt.BasedOn) == 0 {
		if e, _, err := p.mgr.Sched.PlanByVersion(p.plan.Version); err == nil {
			opt.BasedOn = []string{e.ID}
		}
	}
	res, err := p.mgr.Plan(tree, est, opt)
	if err != nil {
		return nil, err
	}
	p.plan = &res.Plan
	if p.rec != nil {
		// The plan's store instances were recorded by the commit feed;
		// this records which version became the *tracked* plan.
		p.rec.append(&persist.Record{Kind: persist.RecPlan,
			Plan: &persist.PlanRecord{Version: res.Plan.Version}})
	}
	return p.plan, p.commitDurable()
}

// CurrentPlan returns the tracked plan, or nil before planning.
func (p *Project) CurrentPlan() *Plan { return p.plan }

// Run executes the task tree covering the targets, tracked against the
// current plan if one exists. With autoComplete, finished activities are
// linked to their final entity instances and the plan is re-propagated.
func (p *Project) Run(targets []string, autoComplete bool) (*ExecResult, error) {
	tree, err := p.mgr.ExtractTree(targets...)
	if err != nil {
		return nil, err
	}
	res, err := p.mgr.ExecuteTask(tree, engine.ExecOptions{
		Plan: p.plan, AutoComplete: autoComplete,
	})
	if err == nil {
		err = p.commitDurable()
	}
	return res, err
}

// RunParallel executes like Run but overlaps independent branches on the
// virtual timeline — the team-execution model that matches the plan's
// semantics (an activity starts when its producers finish, not when the
// previous traversal step does).
func (p *Project) RunParallel(targets []string, autoComplete bool) (*ExecResult, error) {
	tree, err := p.mgr.ExtractTree(targets...)
	if err != nil {
		return nil, err
	}
	res, err := p.mgr.ExecuteTask(tree, engine.ExecOptions{
		Plan: p.plan, AutoComplete: autoComplete, Parallel: true,
	})
	if err == nil {
		err = p.commitDurable()
	}
	return res, err
}

// DefaultRecovery returns the stock fault-tolerance policy: exponential
// virtual-time retry backoff (30m doubling, capped at 24h), a 72h run
// deadline, failover across alternate tool bindings, and graceful
// degradation (a blocked activity fences only its dependent subtree).
func DefaultRecovery() Recovery { return engine.DefaultRecovery() }

// RunOptions tunes RunWith.
type RunOptions struct {
	// AutoComplete links finished activities to their final entity
	// instances and re-propagates the plan (as Run's autoComplete).
	AutoComplete bool
	// Parallel overlaps independent branches on the virtual timeline
	// (as RunParallel).
	Parallel bool
	// MaxIterations bounds goal-seeking iterations per activity
	// (default 10).
	MaxIterations int
	// MaxFailures bounds consecutive failed runs per activity
	// (default 3).
	MaxFailures int
	// Recovery is the fault-tolerance policy. The zero value retries
	// immediately and aborts the execution on the first exhausted
	// activity — the historical behavior; DefaultRecovery() enables
	// the full policy.
	Recovery Recovery
}

// RunWith executes like Run with full control over iteration limits and
// the fault-tolerance policy. When faults are injected and
// Recovery.Verify is nil, the fault detector is installed automatically
// so corrupted outputs force a re-run instead of being accepted.
//
// On failure the returned error is a *flowsched.ExecError wrapping a
// *flowsched.ActivityFailedError: it lists the completed activities,
// carries a consistent store snapshot, and its Resume method re-runs
// zero completed activities once the cause is fixed (e.g. a tool
// rebound).
func (p *Project) RunWith(targets []string, opt RunOptions) (*ExecResult, error) {
	tree, err := p.mgr.ExtractTree(targets...)
	if err != nil {
		return nil, err
	}
	rec := opt.Recovery
	if p.faults != nil && rec.Verify == nil {
		rec.Verify = fault.Check
	}
	res, err := p.mgr.ExecuteTask(tree, engine.ExecOptions{
		Plan: p.plan, AutoComplete: opt.AutoComplete, Parallel: opt.Parallel,
		MaxIterations: opt.MaxIterations, MaxFailures: opt.MaxFailures,
		Recovery: rec,
	})
	if err == nil {
		err = p.commitDurable()
	}
	return res, err
}

// Complete designates an entity instance as the final design data of an
// activity under the current plan, creating the schedule↔entity link.
func (p *Project) Complete(activity, entityID string) error {
	if p.plan == nil {
		return fmt.Errorf("flowsched: no plan to complete against")
	}
	if err := p.mgr.CompleteActivity(p.plan, activity, entityID); err != nil {
		return err
	}
	return p.commitDurable()
}

// Propagate updates the current plan for slips as of the virtual now and
// returns the projected project finish.
func (p *Project) Propagate() (time.Time, error) {
	if p.plan == nil {
		return time.Time{}, fmt.Errorf("flowsched: no plan to propagate")
	}
	finish, err := p.mgr.Sched.Propagate(p.plan, p.Now())
	if err == nil {
		err = p.commitDurable()
	}
	return finish, err
}

// readMgr returns a read-only manager bound to a fresh snapshot of the
// task database. Report and query surfaces render against it so each
// answers from one consistent moment of the store, even when another
// goroutine polls while the project executes.
func (p *Project) readMgr() *engine.Manager { return p.mgr.AtView(nil) }

// Status reports plan-versus-actual state per activity as of the virtual
// now.
func (p *Project) Status() ([]ActivityStatus, error) {
	if p.plan == nil {
		return nil, fmt.Errorf("flowsched: no plan")
	}
	return statusOf(p.readMgr(), p.plan, p.Now())
}

// statusOf renders plan-versus-actual rows against one manager snapshot.
func statusOf(m *engine.Manager, plan *Plan, now time.Time) ([]ActivityStatus, error) {
	return m.Sched.Status(plan, now)
}

// Gantt renders the current plan's Gantt chart (planned and accomplished
// schedule, §IV.B).
func (p *Project) Gantt() (string, error) {
	if p.plan == nil {
		return "", fmt.Errorf("flowsched: no plan")
	}
	return report.Chart(p.readMgr(), p.plan, p.Now())
}

// TaskTreeView renders the task tree with per-node schedule state — the
// central feature of the Hercules user interface (Fig. 8).
func (p *Project) TaskTreeView(targets ...string) (string, error) {
	tree, err := p.mgr.ExtractTree(targets...)
	if err != nil {
		return "", err
	}
	return report.TaskTree(p.readMgr(), tree, p.plan), nil
}

// Query answers a textual §IV.B query (see internal/query for the
// grammar).
func (p *Project) Query(text string) (string, error) {
	r := p.readMgr()
	eng, err := query.New(r.Sched, r.Exec)
	if err != nil {
		return "", err
	}
	return eng.Eval(text)
}

// Analyze runs CPM/PERT over the current plan: early/late dates, slack,
// critical path, completion probability.
func (p *Project) Analyze() (*CPMResult, error) {
	if p.plan == nil {
		return nil, fmt.Errorf("flowsched: no plan")
	}
	return analyzeOf(p.readMgr(), p.plan)
}

// analyzeOf runs CPM/PERT over a plan against one manager snapshot.
func analyzeOf(m *engine.Manager, plan *Plan) (*CPMResult, error) {
	_, insts, err := m.Sched.Instances(plan)
	if err != nil {
		return nil, err
	}
	inPlan := make(map[string]bool, len(plan.Activities))
	for _, a := range plan.Activities {
		inPlan[a] = true
	}
	acts := make([]pert.Activity, 0, len(insts))
	for _, in := range insts {
		rule := m.Schema.RuleByActivity(in.Activity)
		var preds []string
		for _, input := range rule.Inputs {
			if prod := m.Schema.Producer(input); prod != nil && inPlan[prod.Activity] {
				preds = append(preds, prod.Activity)
			}
		}
		acts = append(acts, pert.Activity{
			Name: in.Activity, Duration: in.EstWork,
			Optimistic: in.Optimistic, Pessimistic: in.Pessimistic,
			Preds: preds,
		})
	}
	net, err := pert.NewNetwork(acts)
	if err != nil {
		return nil, err
	}
	return net.Analyze()
}

// Events returns the workflow manager's event stream.
func (p *Project) Events() []Event { return p.mgr.Events() }

// EventsSince returns the events from sequence number seq on (seq
// counts events already seen; 0 means all). The stream is append-only,
// so a poller resumes with seq += len(returned) without re-copying the
// full history each time.
func (p *Project) EventsSince(seq int) []Event { return p.mgr.EventsSince(seq) }

// EventsPage returns the events from cursor since on plus the next
// cursor to resume from — the same resume token the HTTP /events route
// returns as "next" (and stamps as SSE event IDs). Negative cursors
// are treated as 0 so next never drifts below the true position.
func (p *Project) EventsPage(since int) ([]Event, int) {
	if since < 0 {
		since = 0
	}
	evs := p.mgr.EventsSince(since)
	return evs, since + len(evs)
}

// EventsAfter is the push-consumer variant of EventsSince: when events
// past seq already exist they return immediately (wake is nil);
// otherwise wake is closed at the next append and the caller re-reads.
// The SSE broadcast hub rides this — one blocked goroutine per stream
// instead of a poll loop.
func (p *Project) EventsAfter(seq int) ([]Event, <-chan struct{}) { return p.mgr.EventsAfter(seq) }

// EventCount is the current event-stream length — the cursor at which
// a new live subscriber starts following.
func (p *Project) EventCount() int { return p.mgr.EventCount() }

// ApplyScenarioEdit commits a what-if edit to the live project: the
// perturbed activities' tools are rebound with scaled/delayed profiles
// (instance names kept, so seeds and output content are unchanged — an
// accepted edit shifts time, not design behaviour). This is the write
// behind `POST /edit`: a designer promotes a scenario from Scenarios
// into the tracked reality. Fault edits are refused; use InjectFaults.
func (p *Project) ApplyScenarioEdit(e ScenarioEdit) error {
	if err := scenario.Apply(p.mgr, e); err != nil {
		return err
	}
	// The rebind changed every future estimate without touching the
	// store; bump the version so snapshot caches drop stale risk and
	// prediction renders and concurrent If-Match writes see the edit.
	p.mgr.DB.Touch()
	return p.commitDurable()
}

// Metrics returns a point-in-time snapshot of every registered metric,
// sorted by name. Empty unless Options.Obs enabled observability.
func (p *Project) Metrics() []MetricSnapshot { return p.obs.Metrics().Snapshot() }

// MetricsText renders the metrics in Prometheus text exposition format.
// Empty unless observability is enabled.
func (p *Project) MetricsText() string { return p.obs.Metrics().PromText() }

// MetricsJSON renders the metrics snapshot as JSON. Empty ("[]") unless
// observability is enabled.
func (p *Project) MetricsJSON() ([]byte, error) { return p.obs.Metrics().JSON() }

// LintMetrics checks every registered metric against the repo's naming
// and cardinality conventions (snake_case names, _total counters, unit
// suffixes on histograms, labeled families within their series bounds).
// Nil on a clean — or uninstrumented — project.
func (p *Project) LintMetrics() []error { return p.obs.Metrics().Lint() }

// TraceSpans returns the finished dual-clock trace spans in end order.
// Empty unless observability is enabled.
func (p *Project) TraceSpans() []Span { return p.obs.Tracer().Spans() }

// TraceTree renders the trace spans as an indented tree showing both
// clocks per span. maxDepth > 0 limits the printed depth (0 =
// unlimited). Empty unless observability is enabled.
func (p *Project) TraceTree(maxDepth int) string {
	return obs.RenderTree(p.obs.Tracer().Spans(), maxDepth)
}

// TraceDropped reports how many spans were discarded over the
// ObsOptions.MaxSpans bound.
func (p *Project) TraceDropped() int64 { return p.obs.Tracer().Dropped() }

// MilestoneStatus is a milestone report row (target vs projected/actual).
type MilestoneStatus = sched.MilestoneStatus

// SetMilestone commits a named target date for a data class under the
// current plan — a "proposed milestone" in the sense of the paper's
// Fig. 1. The milestone is achieved when the producing activity
// completes.
func (p *Project) SetMilestone(name, class string, target time.Time) error {
	if p.plan == nil {
		return fmt.Errorf("flowsched: no plan to set a milestone against")
	}
	if _, err := p.mgr.Sched.SetMilestone(p.plan, name, class, target); err != nil {
		return err
	}
	return p.commitDurable()
}

// MilestoneReport refreshes and scores the current plan's milestones:
// achieved-at dates for completed ones, projected margins for pending
// ones (negative margin = projected or actual miss).
func (p *Project) MilestoneReport() ([]MilestoneStatus, error) {
	if p.plan == nil {
		return nil, fmt.Errorf("flowsched: no plan")
	}
	return p.readMgr().Sched.MilestoneReport(p.plan)
}

// Grouping organizes activities into hierarchical composite tasks.
type Grouping = hier.Grouping

// CompositeStatus is a rolled-up composite-task status row.
type CompositeStatus = hier.CompositeStatus

// NewGrouping builds a hierarchical task grouping (composite name →
// member activities; composites must be disjoint).
func NewGrouping(groups map[string][]string) (*Grouping, error) {
	return hier.NewGrouping(groups)
}

// OutlineStatus renders the current plan's status rolled up through the
// grouping — the project manager's composite-task view (§IV.C: "viewing
// a portion of the overall schedule").
func (p *Project) OutlineStatus(g *Grouping) (string, error) {
	if p.plan == nil {
		return "", fmt.Errorf("flowsched: no plan")
	}
	if g == nil {
		return "", fmt.Errorf("flowsched: nil grouping")
	}
	if err := g.CheckCovers(p.plan); err != nil {
		return "", err
	}
	rows, err := statusOf(p.readMgr(), p.plan, p.Now())
	if err != nil {
		return "", err
	}
	return g.Outline(rows)
}

// DeadlineMargin reports the working time between the current plan's
// projected finish and the deadline: positive when the project is ahead,
// negative when the projection overruns the deadline.
func (p *Project) DeadlineMargin(deadline time.Time) (time.Duration, error) {
	if p.plan == nil {
		return 0, fmt.Errorf("flowsched: no plan")
	}
	cal := p.mgr.Calendar
	if p.plan.Finish.After(deadline) {
		return -cal.WorkBetween(deadline, p.plan.Finish), nil
	}
	return cal.WorkBetween(p.plan.Finish, deadline), nil
}

// Dashboard renders a one-page project view: plan summary, per-activity
// status, the Gantt chart, and the critical path.
func (p *Project) Dashboard() (string, error) {
	if p.plan == nil {
		return "", fmt.Errorf("flowsched: no plan")
	}
	// One snapshot serves every section, so the dashboard is a
	// consistent moment of the database even mid-execution.
	return dashboardOf(p.readMgr(), p.plan, p.Now())
}

// dashboardOf renders the one-page view against one manager snapshot.
func dashboardOf(m *engine.Manager, plan *Plan, now time.Time) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "project dashboard — plan v%d, targets %v\n",
		plan.Version, plan.Targets)
	fmt.Fprintf(&b, "now %s; projected finish %s\n\n",
		now.Format("2006-01-02 15:04"), plan.Finish.Format("2006-01-02 15:04"))
	rows, err := statusOf(m, plan, now)
	if err != nil {
		return "", err
	}
	done := 0
	for _, r := range rows {
		if r.State == "done" {
			done++
		}
	}
	fmt.Fprintf(&b, "progress: %d/%d activities done\n", done, len(rows))
	for _, r := range rows {
		slip := ""
		if r.Slip > 0 {
			slip = fmt.Sprintf("  slip %s", r.Slip.Round(time.Minute))
		}
		fmt.Fprintf(&b, "  %-12s %-12s%s\n", r.Activity, r.State, slip)
	}
	b.WriteString("\n")
	chart, err := report.Chart(m, plan, now)
	if err != nil {
		return "", err
	}
	b.WriteString(chart)
	cpm, err := analyzeOf(m, plan)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\ncritical path (%s working): %s\n",
		cpm.Duration, strings.Join(cpm.CriticalPath, " -> "))
	return b.String(), nil
}

// StatusReport renders the periodic manager's report for [from, to):
// activity counts, completions, constraint violations, slips, and the
// next period's planned starts.
func (p *Project) StatusReport(from, to time.Time) (string, error) {
	return report.StatusReport(p.readMgr(), p.plan, from, to)
}

// ExportPlanCSV renders the current plan as CSV for spreadsheet or PM
// tooling.
func (p *Project) ExportPlanCSV() (string, error) {
	if p.plan == nil {
		return "", fmt.Errorf("flowsched: no plan to export")
	}
	return export.PlanCSV(p.mgr.Sched, p.plan)
}

// ExportMPX renders the current plan as a minimal MPX-style record stream
// for legacy project-management tools.
func (p *Project) ExportMPX() (string, error) {
	if p.plan == nil {
		return "", fmt.Errorf("flowsched: no plan to export")
	}
	return export.MPX(p.mgr.Sched, p.plan)
}

// ImportActualsCSV applies manually collected actual dates (rows of
// activity,start,finish,done) to the current plan. Completed activities
// are linked to the latest entity instance of their output class, so
// the paper's schedule↔entity link is preserved even for hand-entered
// status. Returns how many rows were applied.
func (p *Project) ImportActualsCSV(r io.Reader) (int, error) {
	if p.plan == nil {
		return 0, fmt.Errorf("flowsched: no plan to apply actuals to")
	}
	actuals, err := export.ParseActualsCSV(r)
	if err != nil {
		return 0, err
	}
	resolve := func(activity string) (string, error) {
		rule := p.mgr.Schema.RuleByActivity(activity)
		if rule == nil {
			return "", fmt.Errorf("flowsched: unknown activity %q", activity)
		}
		e, ent, err := p.mgr.Exec.LatestEntity(rule.Output)
		if err != nil {
			return "", err
		}
		if ent == nil {
			return "", fmt.Errorf("flowsched: no %s entity exists to link %s to", rule.Output, activity)
		}
		return e.ID, nil
	}
	n, err := export.ApplyActuals(p.mgr.Sched, p.plan, actuals, resolve)
	if err == nil {
		err = p.commitDurable()
	}
	return n, err
}

// RiskResult is the outcome of a Monte-Carlo schedule risk analysis.
type RiskResult = monte.Result

// RiskOptions tunes a Monte-Carlo schedule risk analysis.
type RiskOptions struct {
	// Trials is the number of sampled executions (default 1000).
	Trials int
	// Seed makes the analysis reproducible.
	Seed int64
	// Workers caps the engine's parallelism: 0 uses all cores, 1 forces
	// the serial path. The result is bit-identical for every value —
	// trials are sharded deterministically (see docs/risk.md).
	Workers int
	// Sketch answers percentiles from a mergeable deterministic
	// quantile sketch instead of materializing and sorting every trial
	// — the constant-memory path for very large trial counts, with a
	// versioned bounded-error contract (see docs/risk.md).
	Sketch bool
	// NoReuse disables the project's subtree trial-stream memo for this
	// call, forcing a cold simulation. Results are bit-identical either
	// way; the memo only skips redundant sampling.
	NoReuse bool
}

// SimulateRisk runs a Monte-Carlo schedule risk analysis for the targets:
// planning-by-simulation taken statistically. The stochastic model is
// derived from the *bound simulated tools* — each activity's duration is
// triangular over its tool's Base±Jitter with the tool's expected
// iteration count — so the risk analysis and the actual execution share
// one model. Every in-scope activity must be bound to a simulated tool
// (UseSimulatedTools or a NewSimTool binding).
//
// The engine runs sharded across all cores; use SimulateRiskWith to cap
// the worker count. Results are identical either way.
func (p *Project) SimulateRisk(targets []string, trials int, seed int64) (*RiskResult, error) {
	return p.SimulateRiskWith(targets, RiskOptions{Trials: trials, Seed: seed})
}

// SimulateRiskWith is SimulateRisk with full engine options. Unless
// opt.NoReuse is set, the run shares the project's subtree trial-stream
// memo: re-simulations after an edit re-sample only the subtrees whose
// fingerprint changed, bit-identical to a cold run.
func (p *Project) SimulateRiskWith(targets []string, opt RiskOptions) (*RiskResult, error) {
	start := time.Now()
	res, err := riskOf(nil, p.readMgr(), p.obs, p.Now(), p.riskMemo, nil, targets, opt)
	p.recordFlight("risk", start, res, err)
	return res, err
}

// riskOf runs the Monte-Carlo analysis against one manager snapshot;
// parent, when non-nil, nests the simulation's spans under an
// enclosing (e.g. request) span; ctx, when non-nil, cancels the
// simulation cooperatively.
func riskOf(ctx context.Context, m *engine.Manager, o *obs.Obs, now time.Time, memo *monte.Memo, parent *obs.Span, targets []string, opt RiskOptions) (*RiskResult, error) {
	models, err := riskModelsOf(m, targets)
	if err != nil {
		return nil, err
	}
	if opt.NoReuse {
		memo = nil
	}
	return monte.Simulate(models, monte.Config{
		Trials: opt.Trials, Seed: opt.Seed, Workers: opt.Workers,
		Sketch: opt.Sketch, Memo: memo,
		Obs: o, Parent: parent, VirtNow: now, Ctx: ctx,
	})
}

// riskModelsOf derives the stochastic activity models for the targets
// from the bound simulated tools (see scenario.RiskModels — the sweep's
// risk dimension and the facade share one derivation).
func riskModelsOf(m *engine.Manager, targets []string) ([]monte.ActivityModel, error) {
	tree, err := m.ExtractTree(targets...)
	if err != nil {
		return nil, err
	}
	return scenario.RiskModels(m, tree)
}

// RiskFingerprint returns a canonical fingerprint of everything a
// SimulateRiskWith call's distribution depends on: the derived activity
// models (tool profiles, schema precedence within the tree) plus the
// trials, seed, and sketch settings. Two calls whose fingerprints match
// return bit-identical results, no matter how the underlying store
// version or virtual clock moved in between — which is what lets a
// serving layer reuse rendered risk answers across snapshots.
func (p *Project) RiskFingerprint(targets []string, opt RiskOptions) (string, error) {
	return riskFingerprintOf(p.readMgr(), targets, opt)
}

func riskFingerprintOf(m *engine.Manager, targets []string, opt RiskOptions) (string, error) {
	models, err := riskModelsOf(m, targets)
	if err != nil {
		return "", err
	}
	fp, err := monte.ModelsFingerprint(models)
	if err != nil {
		return "", err
	}
	trials := opt.Trials
	if trials <= 0 {
		trials = 1000
	}
	// Sketch mode carries its contract version: a version bump must
	// never be served from a fingerprint cache of the old contract.
	sk := 0
	if opt.Sketch {
		sk = monte.SketchVersion
	}
	return fmt.Sprintf("risk.%016x.t%d.s%d.sk%d", fp, trials, opt.Seed, sk), nil
}

// What-if scenario types (see internal/scenario).
type (
	// ScenarioEdit is one named what-if perturbation: tool-runtime
	// scale factors and injected delays per activity, plus an optional
	// switch to team-parallel execution.
	ScenarioEdit = scenario.Edit
	// ScenarioOptions tunes a what-if sweep (estimator, worker count).
	ScenarioOptions = scenario.Options
	// ScenarioOutcome is one scenario's simulated result.
	ScenarioOutcome = scenario.Outcome
	// ScenarioReport compares every scenario against the baseline fork.
	ScenarioReport = scenario.Report
)

// ParseScenarioEdit parses one textual what-if spec of the form
// "name=Act*1.5;Act+3h;parallel" — the vocabulary shared by the
// hercules CLI and the HTTP serving layer.
func ParseScenarioEdit(spec string) (ScenarioEdit, error) { return scenario.ParseEdit(spec) }

// Fork branches an independent copy of the project at its current state.
// The task database is forked copy-on-write (O(containers), no per-entry
// copying), the design store shares its immutable objects, tool bindings
// are cloned, and the virtual clock continues from the parent's now.
// Parent and fork never observe each other's subsequent changes — plan,
// execute, and measure in the fork freely, then discard it. The fork is
// uninstrumented regardless of the parent's observability options.
func (p *Project) Fork() (*Project, error) {
	m, err := p.mgr.Fork()
	if err != nil {
		return nil, err
	}
	// The fork shares the parent's trial-stream memo: entries key on
	// subtree content, so an unedited fork's risk analysis is a warm
	// full hit and an edited fork pays only for its dirty subtrees.
	f := &Project{mgr: m, riskMemo: p.riskMemo}
	if p.plan != nil {
		c := *p.plan
		c.Targets = append([]string(nil), p.plan.Targets...)
		c.Activities = append([]string(nil), p.plan.Activities...)
		c.BasedOn = append([]string(nil), p.plan.BasedOn...)
		c.Instances = make(map[string]string, len(p.plan.Instances))
		for a, id := range p.plan.Instances {
			c.Instances[a] = id
		}
		f.plan = &c
	}
	return f, nil
}

// Scenarios runs a parallel what-if sweep toward the targets: one
// copy-on-write fork per edit plus an unedited baseline, each re-planned
// and re-executed concurrently, with outcomes compared against the
// baseline (finish dates, working-time deltas, critical paths, slack).
// The project itself is never modified. Outcomes are bit-identical for
// every worker count. With project observability enabled, the sweep
// records a scenario span tree and a scenario_runs_total counter.
func (p *Project) Scenarios(targets []string, edits []ScenarioEdit, opt ScenarioOptions) (*ScenarioReport, error) {
	if opt.Obs == nil {
		opt.Obs = p.obs
	}
	if opt.Risk != nil && opt.Risk.Memo == nil {
		// Share the project's trial-stream memo so the sweep's baseline
		// simulation is itself warm when /risk ran first (and vice versa).
		spec := *opt.Risk
		spec.Memo = p.riskMemo
		opt.Risk = &spec
	}
	start := time.Now()
	rep, err := scenario.Sweep(p.mgr, targets, edits, opt)
	if p.flight != nil {
		rec := obs.FlightRecord{
			TraceID: obs.NewTraceID(), Route: "whatif", Start: start,
			Latency:    time.Since(start),
			VirtualNow: p.Now(), StoreVersion: p.mgr.DB.Version(),
		}
		if rep != nil {
			rec.SampledTrials, rec.ReusedTrials = rep.RiskSampledTrials, rep.RiskReusedTrials
		}
		if err != nil {
			rec.Error = err.Error()
		}
		p.flight.Record(rec)
	}
	return rep, err
}

// TeamPlan is the result of OptimizeTeam: the smallest interchangeable
// team meeting the tolerance, with its leveled schedule.
type TeamPlan struct {
	// Size is the chosen team size.
	Size int
	// Makespan is the leveled working-time span.
	Makespan time.Duration
	// CriticalPath is the precedence-only lower bound.
	CriticalPath time.Duration
	// Assignments lists who does what when (working-time offsets).
	Assignments []level.Assignment
}

// OptimizeTeam answers the paper's resource-optimization question (§I:
// "optimize the resources associated with future projects"): using the
// estimator, it finds the smallest team of interchangeable designers —
// up to maxTeam — whose list-scheduled makespan for the targets stays
// within tolerance (e.g. 1.05) of the critical-path lower bound.
func (p *Project) OptimizeTeam(targets []string, est Estimator, maxTeam int, tolerance float64) (*TeamPlan, error) {
	tree, err := p.mgr.ExtractTree(targets...)
	if err != nil {
		return nil, err
	}
	var tasks []level.Task
	for _, act := range tree.Activities() {
		rule := p.mgr.Schema.RuleByActivity(act)
		e, err := est.Estimate(act, rule)
		if err != nil {
			return nil, err
		}
		var preds []string
		for _, in := range rule.Inputs {
			if prod := p.mgr.Schema.Producer(in); prod != nil && tree.Contains(prod.Activity) {
				preds = append(preds, prod.Activity)
			}
		}
		tasks = append(tasks, level.Task{Name: act, Duration: e.Work, Preds: preds})
	}
	size, res, err := level.MinimalTeam(tasks, maxTeam, tolerance)
	if err != nil {
		return nil, err
	}
	return &TeamPlan{
		Size: size, Makespan: res.Makespan,
		CriticalPath: res.CriticalPathLength,
		Assignments:  res.Assignments,
	}, nil
}

// HistoricalEstimator returns an estimator that uses this project's
// completed executions, falling back to fb for activities without
// history. Use it to plan a follow-on project from measured data.
func (p *Project) HistoricalEstimator(fb Estimator) Estimator {
	return Historical{Sched: p.mgr.Sched, Exec: p.mgr.Exec, Fallback: fb}
}

// sessionSnapshot is the persisted form of a project session.
type sessionSnapshot struct {
	// Schema is the task schema in DSL form.
	Schema string `json:"schema"`
	// Designer and Now restore the session identity and virtual clock.
	Designer string    `json:"designer"`
	Now      time.Time `json:"now"`
	// DB is the task database (both Level 3 spaces, with links).
	DB json.RawMessage `json:"db"`
	// Data is the Level 4 design-data store (content included).
	Data json.RawMessage `json:"data"`
	// PlanVersion restores the tracked plan (0 = none).
	PlanVersion int `json:"planVersion,omitempty"`
}

// Snapshot serializes the whole session — schema, virtual clock, task
// database (both Level 3 spaces), design data, and the tracked plan —
// as JSON. Restore it with Load. Tool bindings and the in-memory event
// stream are not persisted; rebind tools after loading.
func (p *Project) Snapshot() ([]byte, error) {
	db, err := json.Marshal(p.mgr.DB)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(p.mgr.Data)
	if err != nil {
		return nil, err
	}
	s := sessionSnapshot{
		Schema: p.mgr.Schema.Format(), Designer: p.mgr.Designer,
		Now: p.Now(), DB: db, Data: data,
	}
	if p.plan != nil {
		s.PlanVersion = p.plan.Version
	}
	return json.Marshal(s)
}

// Load restores a project from a Snapshot. The calendar (not persisted)
// comes from opts; rebind tools with UseSimulatedTools or BindTool before
// executing.
func Load(snapshot []byte, opt Options) (*Project, error) {
	var s sessionSnapshot
	if err := json.Unmarshal(snapshot, &s); err != nil {
		return nil, fmt.Errorf("flowsched: load: %w", err)
	}
	sch, err := schema.Parse(s.Schema)
	if err != nil {
		return nil, fmt.Errorf("flowsched: load schema: %w", err)
	}
	db := store.NewDB()
	if err := json.Unmarshal(s.DB, db); err != nil {
		return nil, fmt.Errorf("flowsched: load db: %w", err)
	}
	data := design.NewStore()
	if err := json.Unmarshal(s.Data, data); err != nil {
		return nil, fmt.Errorf("flowsched: load data: %w", err)
	}
	if opt.Calendar == nil {
		opt.Calendar = vclock.Standard()
	}
	designer := s.Designer
	if opt.Designer != "" {
		designer = opt.Designer
	}
	m, err := engine.Restore(sch, opt.Calendar, db, data, s.Now, designer)
	if err != nil {
		return nil, err
	}
	p := &Project{mgr: m, riskMemo: monte.NewMemo(0)}
	if opt.Obs.Enabled {
		p.enableObs(opt.Obs)
	}
	if s.PlanVersion > 0 {
		_, plan, err := m.Sched.PlanByVersion(s.PlanVersion)
		if err != nil {
			return nil, fmt.Errorf("flowsched: load plan: %w", err)
		}
		p.plan = plan
	}
	return p, nil
}

// DatabaseDump renders the task database as text (the Figs. 5–7 view).
func (p *Project) DatabaseDump() string { return p.mgr.DB.Dump() }

// Stats reports container/instance counts per Level 3 space.
func (p *Project) Stats() (execContainers, execInstances, schedContainers, schedInstances int) {
	st := p.mgr.DB.Stats()
	e := st[store.ExecutionSpace]
	s := st[store.ScheduleSpace]
	return e.Containers, e.Instances, s.Containers, s.Instances
}
