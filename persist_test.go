package flowsched

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotLoadRoundTrip persists a mid-project session and resumes
// it: the restored project answers the same queries, keeps its tracked
// plan, and can continue executing.
func TestSnapshotLoadRoundTrip(t *testing.T) {
	p := prepared(t)
	est := Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	if _, err := p.Plan([]string{"performance"}, est, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	wantDump := p.DatabaseDump()
	wantDur, err := p.Query("duration of Create")
	if err != nil {
		t.Fatal(err)
	}
	wantNow := p.Now()

	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	re, err := Load(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.DatabaseDump(); got != wantDump {
		t.Fatalf("dump changed across restore:\n%s\nvs\n%s", got, wantDump)
	}
	if got, err := re.Query("duration of Create"); err != nil || got != wantDur {
		t.Fatalf("query after restore = %q, %v", got, err)
	}
	if !re.Now().Equal(wantNow) {
		t.Fatalf("clock = %v, want %v", re.Now(), wantNow)
	}
	if re.CurrentPlan() == nil || re.CurrentPlan().Version != p.CurrentPlan().Version {
		t.Fatalf("tracked plan lost: %+v", re.CurrentPlan())
	}
	// Level 4 content survives: the latest netlist is retrievable through
	// a fresh execution on the restored session.
	if err := re.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run([]string{"performance"}, false); err != nil {
		t.Fatalf("execution after restore: %v", err)
	}
	// New runs continued the iteration numbering, not restarted it.
	ans, err := re.Query("runs of Create")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(ans, "= 1") {
		t.Fatalf("run history reset across restore: %s", ans)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	for _, blob := range []string{
		"{",
		`{"schema":"garbage","db":{},"data":{}}`,
		`{"schema":"` + escaped(Fig4Schema) + `","db":"bogus","data":{}}`,
	} {
		if _, err := Load([]byte(blob), Options{}); err == nil {
			t.Errorf("corrupt snapshot %q accepted", blob[:20])
		}
	}
}

func TestLoadMissingPlanVersion(t *testing.T) {
	p := prepared(t)
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// No plan was created: PlanVersion is 0 and restore yields no plan.
	re, err := Load(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.CurrentPlan() != nil {
		t.Fatal("phantom plan after restore")
	}
}

func TestLoadOverridesDesigner(t *testing.T) {
	p := prepared(t)
	blob, _ := p.Snapshot()
	re, err := Load(blob, Options{Designer: "newowner"})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run([]string{"performance"}, false); err != nil {
		t.Fatal(err)
	}
	// The new runs carry the overriding designer.
	found := false
	for _, ev := range re.Events() {
		if ev.Kind == "run-started" {
			found = true
		}
	}
	if !found {
		t.Fatal("no runs recorded after restore")
	}
}

// escaped JSON-escapes newlines for inline snapshots.
func escaped(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}
