package flowsched

import (
	"strings"
	"testing"
	"time"
)

func TestOutlineStatus(t *testing.T) {
	p := prepared(t)
	g, err := NewGrouping(map[string][]string{
		"Design": {"Create"},
		"Verify": {"Simulate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OutlineStatus(g); err == nil {
		t.Fatal("outline without plan accepted")
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OutlineStatus(nil); err == nil {
		t.Fatal("nil grouping accepted")
	}
	out, err := p.OutlineStatus(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Design", "Verify", "0/1 done"} {
		if !strings.Contains(out, want) {
			t.Errorf("outline missing %q:\n%s", want, out)
		}
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	out, _ = p.OutlineStatus(g)
	if !strings.Contains(out, "1/1 done") {
		t.Fatalf("outline after run:\n%s", out)
	}
	// Grouping that doesn't cover the plan is rejected.
	partial, _ := NewGrouping(map[string][]string{"Design": {"Create"}})
	if _, err := p.OutlineStatus(partial); err == nil {
		t.Fatal("partial grouping accepted")
	}
}

func TestDeadlineMargin(t *testing.T) {
	p := prepared(t)
	if _, err := p.DeadlineMargin(p.Now()); err == nil {
		t.Fatal("margin without plan accepted")
	}
	plan, err := p.Plan([]string{"performance"}, Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Plan finishes Wednesday 17:00. Deadline Friday 17:00 → +16h working.
	deadline := time.Date(1995, time.June, 9, 17, 0, 0, 0, time.UTC)
	margin, err := p.DeadlineMargin(deadline)
	if err != nil {
		t.Fatal(err)
	}
	if margin != 16*time.Hour {
		t.Fatalf("margin = %v, want 16h (plan finish %v)", margin, plan.Finish)
	}
	// Deadline Tuesday 17:00 → −8h working (overrun).
	early := time.Date(1995, time.June, 6, 17, 0, 0, 0, time.UTC)
	margin, err = p.DeadlineMargin(early)
	if err != nil {
		t.Fatal(err)
	}
	if margin != -8*time.Hour {
		t.Fatalf("overrun margin = %v, want -8h", margin)
	}
}

func TestDashboard(t *testing.T) {
	p := prepared(t)
	if _, err := p.Dashboard(); err == nil {
		t.Fatal("dashboard without plan accepted")
	}
	p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	out, err := p.Dashboard()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"project dashboard", "plan v1", "progress: 2/2 activities done",
		"critical path", "Create -> Simulate", "plan v1 (targets performance)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestMilestoneAPI(t *testing.T) {
	p := prepared(t)
	target := time.Date(1995, time.June, 9, 17, 0, 0, 0, time.UTC)
	if err := p.SetMilestone("tapeout", "performance", target); err == nil {
		t.Fatal("milestone without plan accepted")
	}
	if _, err := p.MilestoneReport(); err == nil {
		t.Fatal("report without plan accepted")
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMilestone("perf-signoff", "performance", target); err != nil {
		t.Fatal(err)
	}
	report, err := p.MilestoneReport()
	if err != nil || len(report) != 1 || report[0].Achieved {
		t.Fatalf("report = %+v, %v", report, err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	report, err = p.MilestoneReport()
	if err != nil || !report[0].Achieved {
		t.Fatalf("after run report = %+v, %v", report, err)
	}
	// Execution finished well before Friday: positive margin.
	if report[0].Margin <= 0 {
		t.Fatalf("margin = %v", report[0].Margin)
	}
}
