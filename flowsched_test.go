package flowsched

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func newProject(t *testing.T) *Project {
	t.Helper()
	p, err := New(Fig4Schema, Options{Designer: "ewj"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// prepared returns a project with tools bound and stimuli imported.
func prepared(t *testing.T) *Project {
	t.Helper()
	p := newProject(t)
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsBadSchema(t *testing.T) {
	if _, err := New("garbage", Options{}); err == nil {
		t.Fatal("bad schema accepted")
	}
}

func TestDefaults(t *testing.T) {
	p := newProject(t)
	if p.Schema().Name != "circuit" {
		t.Fatalf("schema = %s", p.Schema().Name)
	}
	if p.Now().IsZero() {
		t.Fatal("clock unset")
	}
	if p.Calendar().DailyHours() != 8*time.Hour {
		t.Fatal("default calendar not standard")
	}
	if p.CurrentPlan() != nil {
		t.Fatal("plan exists before planning")
	}
}

func TestPlanRunLifecycle(t *testing.T) {
	p := prepared(t)
	plan, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Version != 1 || len(plan.Activities) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	res, err := p.Run([]string{"performance"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	st, err := p.Status()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range st {
		if row.State != "done" {
			t.Fatalf("status = %+v", row)
		}
	}
	g, err := p.Gantt()
	if err != nil || !strings.Contains(g, "Create") {
		t.Fatalf("gantt = %q, %v", g, err)
	}
}

func TestPlanLineageAutomatic(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 10 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	ans, err := p.Query("lineage")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "schedule/1 -> schedule/2") {
		t.Fatalf("lineage = %q", ans)
	}
}

func TestRunWithoutPlanUntracked(t *testing.T) {
	p := prepared(t)
	res, err := p.Run([]string{"performance"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	if _, err := p.Status(); err == nil {
		t.Fatal("Status without plan accepted")
	}
	if _, err := p.Gantt(); err == nil {
		t.Fatal("Gantt without plan accepted")
	}
	if _, err := p.Propagate(); err == nil {
		t.Fatal("Propagate without plan accepted")
	}
	if err := p.Complete("Create", "netlist/1"); err == nil {
		t.Fatal("Complete without plan accepted")
	}
	if _, err := p.Analyze(); err == nil {
		t.Fatal("Analyze without plan accepted")
	}
}

func TestManualComplete(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run([]string{"performance"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Complete("Create", res.Outcomes[0].FinalEntity.ID); err != nil {
		t.Fatal(err)
	}
	st, _ := p.Status()
	if st[0].State != "done" {
		t.Fatalf("Create status = %+v", st[0])
	}
}

func TestAnalyze(t *testing.T) {
	p := prepared(t)
	est := Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	if _, err := p.Plan([]string{"performance"}, est, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 24*time.Hour {
		t.Fatalf("CPM duration = %v, want 24h", res.Duration)
	}
	if len(res.CriticalPath) != 2 {
		t.Fatalf("critical path = %v", res.CriticalPath)
	}
}

func TestQueryAfterRun(t *testing.T) {
	p := prepared(t)
	p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	ans, err := p.Query("duration of Create")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "duration of Create") {
		t.Fatalf("query = %q", ans)
	}
	if _, err := p.Query("nonsense"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestHistoricalEstimatorAcrossProjects(t *testing.T) {
	// Project A executes; its measured durations estimate project B.
	a := prepared(t)
	a.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	if _, err := a.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	est := a.HistoricalEstimator(Fixed{Default: 4 * time.Hour})

	b := prepared(t)
	plan, err := b.Plan([]string{"performance"}, est, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The estimate basis must be historical for both activities.
	for _, act := range plan.Activities {
		ans, err := b.Query("estimate of " + act)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(ans, "historical") {
			t.Fatalf("estimate of %s not historical: %s", act, ans)
		}
	}
}

func TestSnapshotAndDump(t *testing.T) {
	p := prepared(t)
	p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	p.Run([]string{"performance"}, true)
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(blob) {
		t.Fatal("snapshot not valid JSON")
	}
	dump := p.DatabaseDump()
	for _, want := range []string{"execution space:", "schedule space:", "netlist"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q", want)
		}
	}
	ec, ei, sc, si := p.Stats()
	if ec != 5 || sc != 3 || ei == 0 || si == 0 {
		t.Fatalf("stats = %d %d %d %d", ec, ei, sc, si)
	}
}

func TestTaskTreeView(t *testing.T) {
	p := prepared(t)
	out, err := p.TaskTreeView("performance")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unplanned") {
		t.Fatalf("view before plan = %q", out)
	}
	p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	out, _ = p.TaskTreeView("performance")
	if !strings.Contains(out, "planned") {
		t.Fatalf("view after plan = %q", out)
	}
}

func TestEventsExposed(t *testing.T) {
	p := prepared(t)
	p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	p.Run([]string{"performance"}, true)
	if len(p.Events()) == 0 {
		t.Fatal("no events")
	}
}

func TestCustomToolBinding(t *testing.T) {
	p := newProject(t)
	tool, err := NewSimTool("editor", "emacs#1", ToolProfile{
		Base: 2 * time.Hour, Jitter: 0.1, MeanIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.BindTool("Create", tool); err != nil {
		t.Fatal(err)
	}
	if err := p.BindTool("Ghost", tool); err == nil {
		t.Fatal("unknown activity accepted")
	}
}

func TestASICSchemaEndToEnd(t *testing.T) {
	p, err := New(ASICSchema, Options{Designer: "team"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []string{"rtl", "constraints", "testbench"} {
		if _, err := p.Import(leaf, []byte("content of "+leaf)); err != nil {
			t.Fatal(err)
		}
	}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	if _, err := p.Plan(targets, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(targets, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 8 {
		t.Fatalf("outcomes = %d, want 8", len(res.Outcomes))
	}
	cpm, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(cpm.CriticalPath) == 0 {
		t.Fatal("no critical path")
	}
}

func TestRunParallelFacade(t *testing.T) {
	mk := func() *Project {
		p, err := New(ASICSchema, Options{Designer: "team"})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.UseSimulatedTools(); err != nil {
			t.Fatal(err)
		}
		for _, leaf := range []string{"rtl", "constraints", "testbench"} {
			if _, err := p.Import(leaf, []byte("x "+leaf)); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	serial := mk()
	if _, err := serial.Run(targets, false); err != nil {
		t.Fatal(err)
	}
	par := mk()
	if _, err := par.RunParallel(targets, false); err != nil {
		t.Fatal(err)
	}
	// The overlapped timeline finishes strictly earlier on this DAG.
	if !par.Now().Before(serial.Now()) {
		t.Fatalf("parallel %v not before serial %v", par.Now(), serial.Now())
	}
	if _, err := par.RunParallel([]string{"ghost"}, false); err == nil {
		t.Fatal("unknown target accepted")
	}
}
