package flowsched

import (
	"strings"
	"testing"
	"time"
)

func TestExportPlanCSVAndMPX(t *testing.T) {
	p := prepared(t)
	if _, err := p.ExportPlanCSV(); err == nil {
		t.Fatal("export without plan accepted")
	}
	if _, err := p.ExportMPX(); err == nil {
		t.Fatal("MPX without plan accepted")
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	csvOut, err := p.ExportPlanCSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut, "Create") || !strings.Contains(csvOut, "Simulate") {
		t.Fatalf("csv:\n%s", csvOut)
	}
	mpx, err := p.ExportMPX()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(mpx, "MPX,flowsched") {
		t.Fatalf("mpx:\n%s", mpx)
	}
}

func TestImportActualsCSVAppliesAndLinks(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	// Execute untracked so entity instances exist but the plan has no
	// actuals — the situation where status is collected by hand.
	if _, err := p.Run([]string{"performance"}, false); err != nil {
		t.Fatal(err)
	}
	src := `activity,actual_start,actual_finish,done
Create,1995-06-05T09:00,1995-06-06T17:00,true
Simulate,1995-06-07T09:00,,false
`
	n, err := p.ImportActualsCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("applied = %d", n)
	}
	st, err := p.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st[0].State != "done" || st[1].State != "in-progress" {
		t.Fatalf("status = %+v", st)
	}
	// The hand-entered completion still created a schedule↔entity link.
	ans, err := p.Query("duration of Create")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "16h") {
		t.Fatalf("duration = %s", ans)
	}
}

func TestImportActualsCSVWithoutEntities(t *testing.T) {
	p := prepared(t)
	p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	// No execution: completing Create cannot link to any netlist.
	src := "Create,1995-06-05T09:00,1995-06-06T17:00,true\n"
	if _, err := p.ImportActualsCSV(strings.NewReader(src)); err == nil ||
		!strings.Contains(err.Error(), "no netlist entity") {
		t.Fatalf("err = %v", err)
	}
	// Without a plan at all.
	p2 := prepared(t)
	if _, err := p2.ImportActualsCSV(strings.NewReader(src)); err == nil {
		t.Fatal("import without plan accepted")
	}
}
