package flowsched

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flowsched/internal/persist"
)

// TestQuarantineOnWALFault pins the facade-level quarantine contract: a
// deterministic disk fault during a committed mutation wedges the
// project into read-only quarantine (Health reports it, writes return
// ErrQuarantined, reads keep serving, the marker lands on disk), and a
// fresh Open over a healthy disk recovers the acked prefix and clears
// the marker.
func TestQuarantineOnWALFault(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Find a seed whose single-shot fault fires during the reopened
	// session's first Import (fault kinds vary by seed; any write-path
	// kind must quarantine the same way).
	ffs := persist.NewFaultFS(persist.OSFS{}, 1)
	ffs.FailAt(8) // past Open's replay reads, inside the first append
	p = openDurable(t, dir, PersistOptions{FS: ffs})
	preSeq := p.Health().WALSeq
	var wedgeErr error
	for i := 0; p.Health().Err == "" && i < 64; i++ {
		_, wedgeErr = p.Import("stimuli", []byte("fault probe"))
	}
	if !ffs.Injected() {
		t.Fatal("fault never injected")
	}
	if !errors.Is(wedgeErr, ErrQuarantined) {
		t.Fatalf("faulted write: got %v, want ErrQuarantined", wedgeErr)
	}
	var qe *QuarantineError
	if !errors.As(wedgeErr, &qe) {
		t.Fatalf("want *QuarantineError, got %T", wedgeErr)
	}

	h := p.Health()
	if !h.Durable || !h.Quarantined || h.Err == "" {
		t.Fatalf("Health = %+v, want durable quarantined", h)
	}
	// Reads still work on the wedged instance.
	if _, err := p.View(); err != nil {
		t.Fatalf("read on quarantined project: %v", err)
	}
	// All further mutations are refused with the typed error.
	if _, err := p.Import("stimuli", []byte("refused")); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("write after wedge: got %v, want ErrQuarantined", err)
	}
	if err := p.Checkpoint(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("checkpoint after wedge: got %v, want ErrQuarantined", err)
	}
	marker := filepath.Join(dir, "quarantined.json")
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("quarantine marker: %v", err)
	}
	// Close surfaces the quarantine but releases the log.
	if err := p.Close(); err != nil && !errors.Is(err, ErrQuarantined) {
		t.Fatalf("close of quarantined project: %v", err)
	}

	// Healthy disk again: recovery serves the pre-fault acked prefix and
	// lifts the quarantine.
	p = openDurable(t, dir, PersistOptions{})
	defer p.Close()
	h = p.Health()
	if h.Quarantined {
		t.Fatalf("post-recovery Health = %+v, want healthy", h)
	}
	if h.WALSeq < preSeq {
		t.Fatalf("recovery lost acked records: seq %d < %d", h.WALSeq, preSeq)
	}
	if _, err := os.Stat(marker); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("marker should be cleared, stat = %v", err)
	}
	if _, err := p.Import("stimuli", []byte("back online")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestHealthNonDurable: an in-memory project has no durability layer and
// reports a zero Health.
func TestHealthNonDurable(t *testing.T) {
	p, err := New(Fig4Schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h := p.Health(); h.Durable || h.Quarantined || h.Err != "" || h.WALSeq != 0 {
		t.Fatalf("Health = %+v, want zero", h)
	}
}
