package flowsched

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/predict"
)

// PredictOptions selects and tunes a duration predictor (see
// docs/prediction.md and internal/predict).
type PredictOptions struct {
	// Method is "mean" (default), "ewma", or "regression".
	Method string
	// Alpha is the EWMA smoothing factor in (0, 1]; 0 selects 0.5.
	Alpha float64
	// Sizes quantify the historical task inputs, indexed by schedule
	// instance position in version order (planned-but-never-completed
	// instances count). Only the regression predictor reads them.
	Sizes []float64
	// Size is the size of the task being predicted (regression only).
	Size float64
}

// Prediction is one duration estimate from historical schedule data.
type Prediction struct {
	// Activity is the predicted activity.
	Activity string `json:"activity"`
	// Method is the predictor that produced the estimate.
	Method string `json:"method"`
	// Estimate is the predicted working time.
	Estimate time.Duration `json:"estimate"`
	// Samples counts the completed history samples consulted.
	Samples int `json:"samples"`
}

// PredictorAccuracy is a back-test score (MAE, MAPE, sample counts).
type PredictorAccuracy = predict.Accuracy

// PredictDuration estimates an activity's next duration from the
// project's completed schedule history — the paper's motivating use of
// retained schedule metadata ("previous schedule data can be used to
// predict the duration of future projects", §I).
func (p *Project) PredictDuration(activity string, opt PredictOptions) (*Prediction, error) {
	return predictOf(p.readMgr(), activity, opt)
}

// EvaluatePredictor back-tests a predictor over the activity's history:
// each completed sample is predicted from the ones before it, with the
// first warmup samples (minimum 1) used as seed history only.
func (p *Project) EvaluatePredictor(activity string, opt PredictOptions, warmup int) (PredictorAccuracy, error) {
	return evaluateOf(p.readMgr(), activity, opt, warmup)
}

// predictorFor resolves a PredictOptions to a concrete predictor and
// its canonical method name.
func predictorFor(opt PredictOptions) (predict.Predictor, string, error) {
	switch strings.ToLower(opt.Method) {
	case "", "mean":
		return predict.Mean{}, "mean", nil
	case "ewma":
		alpha := opt.Alpha
		if alpha == 0 {
			alpha = 0.5
		}
		return predict.EWMA{Alpha: alpha}, "ewma", nil
	case "regression":
		return predict.Regression{}, "regression", nil
	default:
		return nil, "", fmt.Errorf("flowsched: unknown prediction method %q (want mean, ewma, or regression)", opt.Method)
	}
}

// predictOf runs a prediction against one manager snapshot.
func predictOf(m *engine.Manager, activity string, opt PredictOptions) (*Prediction, error) {
	pred, method, err := predictorFor(opt)
	if err != nil {
		return nil, err
	}
	hist, err := predict.HistoryOf(m.Sched, m.Calendar, activity, opt.Sizes)
	if err != nil {
		return nil, err
	}
	if len(hist) == 0 {
		return nil, fmt.Errorf("flowsched: activity %q has no completed history to predict from", activity)
	}
	est, err := pred.Predict(hist, opt.Size)
	if err != nil {
		return nil, err
	}
	return &Prediction{Activity: activity, Method: method, Estimate: est, Samples: len(hist)}, nil
}

// evaluateOf back-tests a predictor against one manager snapshot.
func evaluateOf(m *engine.Manager, activity string, opt PredictOptions, warmup int) (PredictorAccuracy, error) {
	pred, _, err := predictorFor(opt)
	if err != nil {
		return PredictorAccuracy{}, err
	}
	hist, err := predict.HistoryOf(m.Sched, m.Calendar, activity, opt.Sizes)
	if err != nil {
		return PredictorAccuracy{}, err
	}
	return predict.Evaluate(pred, hist, warmup)
}
