package flowsched

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func sweepEdits() []ScenarioEdit {
	return []ScenarioEdit{
		{Name: "sim-slow", Scale: map[string]float64{"Simulate": 2}},
		{Name: "sim-fast", Scale: map[string]float64{"Simulate": 0.5}},
		{Name: "edit-slow", Scale: map[string]float64{"Create": 1.5}},
		{Name: "edit-slip", Delay: map[string]time.Duration{"Create": 16 * time.Hour}},
		{Name: "sim-slip", Delay: map[string]time.Duration{"Simulate": 8 * time.Hour}},
		{Name: "both-slow", Scale: map[string]float64{"Create": 1.25, "Simulate": 1.25}},
		{Name: "team", Parallel: true},
		{Name: "crunch", Scale: map[string]float64{"Create": 0.75, "Simulate": 0.75}},
	}
}

func TestProjectForkIsolation(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	parentDump := p.DatabaseDump()
	parentVersion := p.CurrentPlan().Version

	f, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.DatabaseDump() != parentDump {
		t.Fatal("fork database differs from parent at fork time")
	}
	if f.CurrentPlan() == nil || f.CurrentPlan().Version != parentVersion {
		t.Fatal("fork lost the tracked plan")
	}
	if f.CurrentPlan() == p.CurrentPlan() {
		t.Fatal("fork shares the parent's plan struct")
	}

	// Re-plan and re-run only in the fork.
	fp, err := f.Plan([]string{"performance"}, Fixed{Default: 2 * time.Hour}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Version != parentVersion+1 {
		t.Fatalf("fork plan version = %d, want %d", fp.Version, parentVersion+1)
	}
	if _, err := f.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	if p.DatabaseDump() != parentDump {
		t.Fatal("fork activity leaked into the parent database")
	}
	if p.CurrentPlan().Version != parentVersion {
		t.Fatal("fork re-plan changed the parent's tracked plan")
	}
	// Both sides keep answering reports from their own state.
	if _, err := f.Status(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Status(); err != nil {
		t.Fatal(err)
	}
}

func TestScenariosDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 8} {
		p := prepared(t)
		rep, err := p.Scenarios([]string{"performance"}, sweepEdits(), ScenarioOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.Scenarios) != 8 {
			t.Fatalf("workers=%d: %d scenarios, want 8", workers, len(rep.Scenarios))
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = string(b)
		} else if string(b) != want {
			t.Fatalf("workers=%d report differs from workers=1", workers)
		}
	}
}

func TestScenariosLeaveProjectUntouched(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	before := p.DatabaseDump()
	plan := p.CurrentPlan()
	rep, err := p.Scenarios([]string{"performance"}, sweepEdits(), ScenarioOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.DatabaseDump() != before {
		t.Fatal("sweep wrote the project database")
	}
	if p.CurrentPlan() != plan {
		t.Fatal("sweep replaced the tracked plan")
	}
	if !strings.Contains(rep.Render(), "baseline") {
		t.Fatal("report render missing baseline row")
	}
}

// Satellite (c): a fork's risk analysis is bit-identical to the parent's
// — same tool-derived stochastic models, same seed, same trial sharding.
func TestRiskOnForkMatchesParent(t *testing.T) {
	p := prepared(t)
	want, err := p.SimulateRiskWith([]string{"performance"}, RiskOptions{Trials: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.SimulateRiskWith([]string{"performance"}, RiskOptions{Trials: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("fork risk result differs from parent:\n%s\nvs\n%s", gb, wb)
	}
}

// Satellite: report surfaces polled from another goroutine while the
// project executes answer from consistent snapshots (dump headers and
// entry counts always agree).
func TestDumpAndStatusDuringParallelRun(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if dump := p.DatabaseDump(); !strings.Contains(dump, "execution space:") {
				select {
				case errs <- fmt.Errorf("dump lost its space header:\n%s", dump):
				default:
				}
			}
			if _, err := p.Status(); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	if _, err := p.RunParallel([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("concurrent report failed: %v", err)
	default:
	}
}

// TestWhatIfFingerprintContract pins the fingerprint semantics: stable
// across unrelated store writes, changed by edits that change the
// sweep, and refused outright for inputs hashing cannot capture.
func TestWhatIfFingerprintContract(t *testing.T) {
	p := prepared(t)
	v, err := p.View()
	if err != nil {
		t.Fatal(err)
	}
	targets := []string{"performance"}
	edits := sweepEdits()
	fp1, err := v.WhatIfFingerprint(targets, edits, ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := v.WhatIfFingerprint(targets, edits, ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not deterministic: %s vs %s", fp1, fp2)
	}
	// A different edit set is a different fingerprint.
	other, err := v.WhatIfFingerprint(targets, sweepEdits()[:1], ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if other == fp1 {
		t.Fatal("distinct edit sets share a fingerprint")
	}
	// Fault-injection edits are refused — their behaviour is not
	// capturable by hashing, and a false hit would serve stale bytes.
	_, err = v.WhatIfFingerprint(targets, []ScenarioEdit{
		{Name: "chaos", Faults: &FaultConfig{Seed: 1}},
	}, ScenarioOptions{})
	if err == nil {
		t.Fatal("fault edits must refuse a fingerprint")
	}
	// Custom estimators likewise.
	_, err = v.WhatIfFingerprint(targets, edits, ScenarioOptions{Estimator: Fixed{Default: time.Hour}})
	if err == nil {
		t.Fatal("custom estimators must refuse a fingerprint")
	}
}
