package flowsched

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"flowsched/internal/persist"
	"flowsched/internal/store"
)

// The crash-recovery property harness: drive a randomized workload
// against a durable project, then simulate kill -9 at every WAL record
// boundary — plus torn, truncated, and bit-flipped tails — and require
// that recovery always lands on a clean prefix: a consistent project
// equal to replaying exactly the surviving records, bit-identical
// across repeated recoveries.

// recSpan locates one WAL record's bytes: segment file and [start,end).
type recSpan struct {
	seg        string
	start, end int64
}

// scanSpans parses the segment files' framing (4-byte BE length,
// 4-byte CRC, payload) and returns every record's byte span in log
// order. It is deliberately an independent reimplementation of the
// reader, so the harness does not trust the code under test to locate
// its own record boundaries.
func scanSpans(t *testing.T, dir string) []recSpan {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	var spans []recSpan
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		off := int64(0)
		for off+8 <= int64(len(b)) {
			n := int64(binary.BigEndian.Uint32(b[off:]))
			if off+8+n > int64(len(b)) {
				t.Fatalf("%s: torn frame in a cleanly written log", seg)
			}
			spans = append(spans, recSpan{seg: seg, start: off, end: off + 8 + n})
			off += 8 + n
		}
		if off != int64(len(b)) {
			t.Fatalf("%s: %d trailing bytes", seg, int64(len(b))-off)
		}
	}
	return spans
}

// copyDir clones a project directory (manifest + segments + checkpoint).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// truncateToRecords cuts the cloned directory to exactly k surviving
// records (+extra garbage bytes beyond the boundary, for torn tails):
// the k-th boundary's segment is truncated and every later segment
// removed — byte-for-byte what a crash at that instant leaves behind.
func truncateToRecords(t *testing.T, dir string, spans []recSpan, k int, extra []byte) {
	t.Helper()
	var keepSeg string
	var cutOff int64
	if k == 0 {
		keepSeg, cutOff = spans[0].seg, 0
	} else {
		keepSeg, cutOff = spans[k-1].seg, spans[k-1].end
	}
	keep := filepath.Join(dir, filepath.Base(keepSeg))
	b, err := os.ReadFile(keep)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b[:cutOff:cutOff], extra...)
	if err := os.WriteFile(keep, b, 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	for _, seg := range segs {
		if filepath.Base(seg) > filepath.Base(keepSeg) {
			if err := os.Remove(seg); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// readRecords decodes the full record stream from a clone of dir.
func readRecords(t *testing.T, dir string) []persist.Record {
	t.Helper()
	l, err := persist.Open(copyDir(t, dir), persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var recs []persist.Record
	if _, err := l.Replay(func(r *persist.Record) error {
		recs = append(recs, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// crashIdentity is the recovery comparison key: everything two
// recoveries of the same byte prefix must agree on.
type crashIdentity struct {
	version uint64
	dump    string
	events  int
	now     time.Time
}

func crashIdentityOf(p *Project) crashIdentity {
	return crashIdentity{
		version: p.mgr.DB.Version(),
		dump:    p.DatabaseDump(),
		events:  len(p.Events()),
		now:     p.Now(),
	}
}

// recoverAt clones the master directory, cuts it to k records (with
// optional garbage tail), and recovers. It returns the recovered
// identity after verifying stability: an immediate second crash and
// recovery of the same directory must reproduce the identity exactly.
func recoverAt(t *testing.T, master string, spans []recSpan, k int, extra []byte) crashIdentity {
	t.Helper()
	dir := copyDir(t, master)
	truncateToRecords(t, dir, spans, k, extra)
	p, err := Open(dir, "", Options{}, PersistOptions{NoSync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery at record %d (+%d garbage bytes): %v", k, len(extra), err)
	}
	id := crashIdentityOf(p)
	// No Close: crash again right after recovering, then recover again.
	re, err := Open(dir, "", Options{}, PersistOptions{NoSync: true, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("re-recovery at record %d: %v", k, err)
	}
	if got := crashIdentityOf(re); got != id {
		t.Fatalf("recovery at record %d not stable:\n%+v\nvs\n%+v", k, id, got)
	}
	return id
}

// driveRandom applies a seed-determined workload to a durable project.
func driveRandom(t *testing.T, p *Project, rng *rand.Rand) {
	t.Helper()
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		if _, err := p.Import("stimuli", []byte(fmt.Sprintf("pulse %d", rng.Int63()))); err != nil {
			t.Fatal(err)
		}
	}
	est := Fixed{Default: time.Duration(4+rng.Intn(12)) * time.Hour}
	if _, err := p.Plan([]string{"performance"}, est, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		if err := p.SetMilestone("tapeout", "performance", p.Now().Add(time.Duration(10+rng.Intn(50))*24*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		if _, err := p.Import("stimuli", []byte(fmt.Sprintf("rerun %d", rng.Int63()))); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run([]string{"performance"}, false); err != nil {
			t.Fatal(err)
		}
	}
}

// buildMaster creates a driven durable project and returns its
// directory, record spans, and decoded records. Small segments force
// multi-segment logs; auto-checkpointing is off so the whole history
// is in the segments and "prefix" is exact.
func buildMaster(t *testing.T, rng *rand.Rand) (string, []recSpan, []persist.Record) {
	t.Helper()
	dir := t.TempDir()
	p, err := Open(dir, Fig4Schema, Options{Designer: "ewj"},
		PersistOptions{NoSync: true, CheckpointEvery: -1, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	driveRandom(t, p, rng)
	// No Close: the master itself is a crash image.
	spans := scanSpans(t, dir)
	recs := readRecords(t, dir)
	if len(spans) != len(recs) {
		t.Fatalf("%d spans vs %d records", len(spans), len(recs))
	}
	return dir, spans, recs
}

// expectAt computes what a clean prefix of k records must recover to,
// from the records alone. Before the schema's containers are all
// durable (the bootstrap prefix), recovery legitimately re-creates the
// missing ones, so the version floor is an inequality there and exact
// afterwards.
func expectAt(recs []persist.Record, k int) (version uint64, events int, exact bool) {
	creates := map[string]bool{}
	allCreates := map[string]bool{}
	for i, r := range recs {
		if r.Kind == persist.RecStore && r.Store != nil {
			if i < k && r.Store.Version > version {
				version = r.Store.Version
			}
			if r.Store.Kind == store.MutCreate {
				allCreates[r.Store.Container] = true
				if i < k {
					creates[r.Store.Container] = true
				}
			}
		}
		if r.Kind == persist.RecEvent && i < k {
			events++
		}
	}
	return version, events, len(creates) == len(allCreates)
}

// checkCut recovers at record k and validates it against the
// record-derived expectation.
func checkCut(t *testing.T, master string, spans []recSpan, recs []persist.Record, k int, extra []byte) crashIdentity {
	t.Helper()
	id := recoverAt(t, master, spans, k, extra)
	version, events, exact := expectAt(recs, k)
	if exact {
		if id.version != version {
			t.Fatalf("cut at %d: recovered version %d, want %d", k, id.version, version)
		}
		if id.events != events {
			t.Fatalf("cut at %d: recovered %d events, want %d", k, id.events, events)
		}
		if k > 0 && !id.now.Equal(recs[k-1].Now) {
			t.Fatalf("cut at %d: recovered clock %v, want %v", k, id.now, recs[k-1].Now)
		}
	} else {
		if id.version < version {
			t.Fatalf("cut at %d (mid-bootstrap): recovered version %d below floor %d", k, id.version, version)
		}
	}
	return id
}

// TestCrashAtEveryRecordBoundary is the exhaustive sweep on one seed:
// kill -9 after every single WAL record (and before the first) must
// recover exactly that prefix.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(1995))
	master, spans, recs := buildMaster(t, rng)
	if len(recs) < 20 {
		t.Fatalf("workload produced only %d records", len(recs))
	}
	for k := 0; k <= len(spans); k++ {
		checkCut(t, master, spans, recs, k, nil)
	}
}

// TestCrashRecoveryPropertyHundredSeeds fuzzes the contract across 100
// randomized workloads: for each seed, random record-boundary kills,
// a torn tail (partial frame bytes), and a bit-flipped record — every
// one must recover to the clean prefix the damage leaves behind,
// bit-identically to recovering that prefix directly.
func TestCrashRecoveryPropertyHundredSeeds(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			master, spans, recs := buildMaster(t, rng)
			n := len(spans)

			// Three random clean boundary kills.
			for i := 0; i < 3; i++ {
				checkCut(t, master, spans, recs, rng.Intn(n+1), nil)
			}

			// A torn tail: a partial frame after boundary k must be
			// discarded, recovering exactly k records — bit-identical to
			// the clean cut at k.
			k := rng.Intn(n)
			frameLen := spans[k].end - spans[k].start
			garbage := make([]byte, 1+rng.Int63n(frameLen-1))
			rng.Read(garbage)
			// A torn frame, not a valid one: a random length prefix of
			// the next record's real bytes.
			next, err := os.ReadFile(spans[k].seg)
			if err != nil {
				t.Fatal(err)
			}
			copy(garbage, next[spans[k].start:spans[k].end])
			torn := checkCut(t, master, spans, recs, k, garbage)
			clean := checkCut(t, master, spans, recs, k, nil)
			if torn != clean {
				t.Fatalf("torn tail at %d diverged from clean prefix:\n%+v\nvs\n%+v", k, torn, clean)
			}

			// A bit flip inside record j ends the clean prefix at j.
			j := rng.Intn(n)
			dir := copyDir(t, master)
			seg := filepath.Join(dir, filepath.Base(spans[j].seg))
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			off := spans[j].start + rng.Int63n(spans[j].end-spans[j].start)
			b[off] ^= 1 << uint(rng.Intn(8))
			if err := os.WriteFile(seg, b, 0o644); err != nil {
				t.Fatal(err)
			}
			p, err := Open(dir, "", Options{}, PersistOptions{NoSync: true, CheckpointEvery: -1})
			if err != nil {
				t.Fatalf("seed %d: bit flip in record %d: recovery failed: %v", seed, j, err)
			}
			got := crashIdentityOf(p)
			want := checkCut(t, master, spans, recs, j, nil)
			if got != want {
				t.Fatalf("bit flip in record %d diverged from clean prefix %d:\n%+v\nvs\n%+v", j, j, got, want)
			}
		})
	}
}
