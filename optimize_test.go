package flowsched

import (
	"testing"
	"time"
)

func TestOptimizeTeamDiamondShape(t *testing.T) {
	// ASIC flow: signoff activities (DRC, LVS, STA, GateSim) parallelize,
	// so a small team should capture most of the parallelism.
	p, err := New(ASICSchema, Options{Designer: "lead"})
	if err != nil {
		t.Fatal(err)
	}
	est := Fixed{Default: 8 * time.Hour}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}

	tp, err := p.OptimizeTeam(targets, est, 6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Size < 1 || tp.Size > 6 {
		t.Fatalf("team size = %d", tp.Size)
	}
	if tp.Makespan < tp.CriticalPath {
		t.Fatalf("makespan %v below critical path %v", tp.Makespan, tp.CriticalPath)
	}
	if len(tp.Assignments) != 8 {
		t.Fatalf("assignments = %d", len(tp.Assignments))
	}
	// With tolerance 1.0 the returned makespan must equal the lower bound
	// (the ASIC flow has enough slack structure for a small team to hit it).
	if tp.Makespan != tp.CriticalPath {
		t.Fatalf("tolerance 1.0 returned makespan %v != CP %v (size %d)",
			tp.Makespan, tp.CriticalPath, tp.Size)
	}

	// A solo team serializes: strictly worse than the optimized one.
	solo, err := p.OptimizeTeam(targets, est, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Makespan <= tp.Makespan {
		t.Fatalf("solo makespan %v not worse than team %v", solo.Makespan, tp.Makespan)
	}
}

func TestOptimizeTeamErrors(t *testing.T) {
	p, _ := New(Fig4Schema, Options{})
	if _, err := p.OptimizeTeam([]string{"ghost"}, Fixed{Default: time.Hour}, 3, 1.1); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := p.OptimizeTeam([]string{"performance"}, Fixed{}, 3, 1.1); err == nil {
		t.Fatal("empty estimator accepted")
	}
	if _, err := p.OptimizeTeam([]string{"performance"}, Fixed{Default: time.Hour}, 0, 1.1); err == nil {
		t.Fatal("maxTeam 0 accepted")
	}
}
