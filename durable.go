package flowsched

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/engine"
	"flowsched/internal/monte"
	"flowsched/internal/persist"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

// PersistOptions configures a durable project opened with Open.
type PersistOptions struct {
	// SegmentBytes is the WAL segment roll threshold (default 4 MiB).
	SegmentBytes int64
	// NoSync skips the per-append fsync. A crash may then lose recently
	// acknowledged mutations, but recovery still yields a clean prefix.
	// For tests and benchmarks.
	NoSync bool
	// CheckpointEvery bounds replay debt: after a mutating facade
	// operation leaves more than this many records past the installed
	// checkpoint, a checkpoint is taken automatically. 0 selects the
	// default (4096); negative disables auto-checkpointing (Checkpoint
	// remains available).
	CheckpointEvery int
	// FS is the filesystem the WAL writes through. Nil selects the real
	// one; tests inject persist.FaultFS to drive the project into
	// quarantine deterministically.
	FS persist.FS
}

const defaultCheckpointEvery = 4096

// manifestName is the per-project identity file, written once at create.
const manifestName = "manifest.json"

// durableManifest pins what the WAL alone cannot reconstruct: the schema
// the containers were created from, the designer, and the virtual start
// time. The calendar is configuration, not state — it comes from Options
// on every Open, exactly as with Load.
type durableManifest struct {
	Schema   string    `json:"schema"`
	Designer string    `json:"designer"`
	Start    time.Time `json:"start"`
}

// durableCheckpoint is the WAL checkpoint payload: the full-fidelity
// store state (exact version counter and watermarks — see store.State),
// the design data, the virtual clock, the tracked plan, and the event
// stream. Recovering from it is bit-identical to replaying the covered
// records.
type durableCheckpoint struct {
	Now         time.Time       `json:"now"`
	Store       *store.State    `json:"store"`
	Data        json.RawMessage `json:"data"`
	PlanVersion int             `json:"planVersion,omitempty"`
	Events      []engine.Event  `json:"events,omitempty"`
}

// ErrQuarantined marks a durable project whose write-ahead log has
// failed: the project is read-only quarantined. Reads keep answering
// from the last committed in-memory state; every mutating facade
// operation fails with an error wrapping this sentinel until a host
// Reopen (a fresh flowsched.Open) re-runs clean-prefix recovery.
var ErrQuarantined = fmt.Errorf("flowsched: project quarantined (write-ahead log failed; read-only)")

// QuarantineError is the typed error mutating operations return from a
// quarantined project. It wraps both ErrQuarantined (for errors.Is
// dispatch) and the underlying disk failure.
type QuarantineError struct {
	// Cause is the WAL failure that triggered quarantine.
	Cause error
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("%v: %v", ErrQuarantined, e.Cause)
}
func (e *QuarantineError) Unwrap() error { return e.Cause }
func (e *QuarantineError) Is(target error) bool {
	return target == ErrQuarantined
}

// quarantineName is the on-disk quarantine marker: written beside the
// WAL when the project wedges so operators (hercules projects) and
// post-crash inspection see the degraded state without attaching to the
// process; removed by the next successful Open.
const quarantineName = "quarantined.json"

// quarantineMarker is the marker file's payload.
type quarantineMarker struct {
	Error string    `json:"error"`
	Time  time.Time `json:"time"` // wall clock; operator-facing
}

// Health describes a project's serving state.
type Health struct {
	// Durable reports whether the project has a write-ahead log.
	Durable bool `json:"durable"`
	// Quarantined is true once the WAL has failed: the project is
	// read-only until recovered by a fresh Open.
	Quarantined bool `json:"quarantined"`
	// Err is the failure that triggered quarantine ("" while healthy).
	Err string `json:"error,omitempty"`
	// WALSeq is the last durable record sequence number.
	WALSeq uint64 `json:"walSeq,omitempty"`
}

// Health reports the project's serving state: healthy, or read-only
// quarantined after a WAL failure. Non-durable projects are always
// healthy (there is no disk to fail).
func (p *Project) Health() Health {
	if p.rec == nil {
		return Health{}
	}
	h := Health{Durable: true, WALSeq: p.rec.log.Seq()}
	if err := p.rec.Err(); err != nil {
		h.Quarantined = true
		h.Err = err.Error()
	}
	return h
}

// recorder bridges the in-memory change feeds to the WAL. Hooks fire
// from the project's executing goroutine in commit order; each record is
// stamped with the virtual clock at append time, which is how recovery
// restores the clock (the clock is monotonic, so the last record's Now
// is the crashed process's Now).
//
// A failed append wedges the recorder: in-memory state has advanced past
// what is durable, so further appends are suppressed and the error
// surfaces — typed as *QuarantineError — from the next mutating facade
// operation (and from Checkpoint and Close). Wedging also drops the
// quarantine marker file beside the WAL.
type recorder struct {
	log   *persist.Log
	clock *vclock.Clock
	mu    sync.Mutex
	err   error
}

func (r *recorder) append(rec *persist.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	rec.Now = r.clock.Now()
	if _, err := r.log.Append(rec); err != nil {
		r.wedgeLocked(err)
	}
}

// wedge records the first WAL failure and writes the quarantine marker.
func (r *recorder) wedge(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wedgeLocked(err)
}

func (r *recorder) wedgeLocked(err error) {
	if r.err != nil || err == nil {
		return
	}
	r.err = err
	// Marker write is best-effort and bypasses the WAL's FS seam: on a
	// genuinely failed disk it fails silently (Health still reports the
	// quarantine in-process), and under fault injection it must not
	// perturb the deterministic op count.
	if b, merr := json.Marshal(quarantineMarker{Error: err.Error(), Time: time.Now()}); merr == nil {
		os.WriteFile(filepath.Join(r.log.Dir(), quarantineName), b, 0o644)
	}
}

// Err returns the wedging error, if any.
func (r *recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Open creates or recovers a durable project rooted at dir. On first
// open the directory is initialized: a manifest pins schema, designer,
// and start time, and every subsequent committed mutation — task-database
// commits, design-data inserts, engine events, plan selections — is
// appended to a write-ahead log before the call that caused it returns.
// On later opens the project is rebuilt by loading the latest checkpoint
// and replaying the log's clean record prefix; the recovered project is
// bit-identical to the crashed one up to its last durable record: same
// store version, same container watermarks, same event stream, same
// virtual clock.
//
// schemaSrc is required on first open and ignored afterwards (the
// manifest wins — a project's schema is fixed at creation). As with
// Load, tool bindings are not persisted; rebind before executing.
func Open(dir, schemaSrc string, opt Options, po PersistOptions) (*Project, error) {
	log, err := persist.Open(dir, persist.Options{
		SegmentBytes: po.SegmentBytes, NoSync: po.NoSync, FS: po.FS,
	})
	if err != nil {
		return nil, err
	}
	manPath := filepath.Join(dir, manifestName)
	manBytes, err := os.ReadFile(manPath)
	var p *Project
	covered := map[string]bool{} // containers whose creation is already logged
	switch {
	case os.IsNotExist(err):
		p, err = createDurable(dir, manPath, schemaSrc, opt, log)
	case err == nil:
		p, covered, err = recoverDurable(manBytes, opt, log)
	default:
		return nil, fmt.Errorf("flowsched: open %s: %w", manPath, err)
	}
	if err != nil {
		log.Close()
		return nil, err
	}

	rec := &recorder{log: log, clock: p.mgr.Clock}
	p.rec = rec
	p.checkpointEvery = uint64(defaultCheckpointEvery)
	switch {
	case po.CheckpointEvery > 0:
		p.checkpointEvery = uint64(po.CheckpointEvery)
	case po.CheckpointEvery < 0:
		p.checkpointEvery = 0
	}
	p.mgr.DB.SetCommitHook(func(m store.Mutation) {
		rec.append(&persist.Record{Kind: persist.RecStore, Store: &m})
	})
	p.mgr.Data.SetPutHook(func(o *design.Object) {
		rec.append(&persist.Record{Kind: persist.RecData, Data: &persist.DataPut{
			Class: o.Ref.Class, Producer: o.Producer, Created: o.Created, Bytes: o.Bytes,
		}})
	})
	p.mgr.SetEventHook(func(e engine.Event) {
		rec.append(&persist.Record{Kind: persist.RecEvent, Event: &e})
	})

	// Bootstrap: container creations that happened before the hooks were
	// attached (engine.New on a fresh project, or engine.Restore's
	// idempotent space initialization after a crash that preceded full
	// bootstrap) are synthesized into the log now. An empty container's
	// watermark is exactly the version its creation committed at, so the
	// synthesized records replay to identical versions.
	for _, c := range p.mgr.DB.Containers() {
		if covered[c.Name] {
			continue
		}
		rec.append(&persist.Record{Kind: persist.RecStore, Store: &store.Mutation{
			Kind: store.MutCreate, Version: c.Watermark(),
			Container: c.Name, Space: c.Space, Class: c.Class,
		}})
	}
	if err := rec.Err(); err != nil {
		log.Close()
		return nil, err
	}
	// Recovery succeeded: clear any quarantine marker a previous wedged
	// process left behind. The marker reflects live state, and this
	// process's log is healthy.
	os.Remove(filepath.Join(dir, quarantineName))
	return p, nil
}

// createDurable initializes a fresh durable project directory.
func createDurable(dir, manPath, schemaSrc string, opt Options, log *persist.Log) (*Project, error) {
	if schemaSrc == "" {
		return nil, fmt.Errorf("flowsched: open %s: new project needs a schema", dir)
	}
	sch, err := schema.Parse(schemaSrc)
	if err != nil {
		return nil, err
	}
	if opt.Designer == "" {
		opt.Designer = "designer"
	}
	if opt.Start.IsZero() {
		opt.Start = vclock.Epoch
	}
	man, err := json.Marshal(durableManifest{
		Schema: sch.Format(), Designer: opt.Designer, Start: opt.Start,
	})
	if err != nil {
		return nil, err
	}
	tmp := manPath + ".tmp"
	if err := os.WriteFile(tmp, man, 0o644); err != nil {
		return nil, fmt.Errorf("flowsched: write manifest: %w", err)
	}
	if err := os.Rename(tmp, manPath); err != nil {
		return nil, fmt.Errorf("flowsched: install manifest: %w", err)
	}
	if _, err := log.Replay(nil); err != nil {
		return nil, err
	}
	return NewFromSchema(sch, opt)
}

// recoverDurable rebuilds a project from checkpoint + log. It returns
// the set of containers whose creation is already durable, so Open can
// synthesize bootstrap records for the rest.
func recoverDurable(manBytes []byte, opt Options, log *persist.Log) (*Project, map[string]bool, error) {
	var man durableManifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, nil, fmt.Errorf("flowsched: manifest corrupt: %w", err)
	}
	sch, err := schema.Parse(man.Schema)
	if err != nil {
		return nil, nil, fmt.Errorf("flowsched: manifest schema: %w", err)
	}
	covered := map[string]bool{}
	db := store.NewDB()
	data := design.NewStore()
	now := man.Start
	planVersion := 0
	var events []engine.Event
	if cpb, _, ok := log.Checkpoint(); ok {
		var cp durableCheckpoint
		if err := json.Unmarshal(cpb, &cp); err != nil {
			return nil, nil, fmt.Errorf("flowsched: checkpoint payload: %w", err)
		}
		if db, err = store.FromState(cp.Store); err != nil {
			return nil, nil, fmt.Errorf("flowsched: checkpoint store: %w", err)
		}
		if err := json.Unmarshal(cp.Data, data); err != nil {
			return nil, nil, fmt.Errorf("flowsched: checkpoint data: %w", err)
		}
		now, planVersion, events = cp.Now, cp.PlanVersion, cp.Events
		for _, c := range db.Containers() {
			covered[c.Name] = true
		}
	}
	if _, err := log.Replay(func(r *persist.Record) error {
		if !r.Now.IsZero() {
			now = r.Now
		}
		switch r.Kind {
		case persist.RecStore:
			if r.Store == nil {
				return fmt.Errorf("flowsched: record %d: empty store mutation", r.Seq)
			}
			if r.Store.Kind == store.MutCreate {
				covered[r.Store.Container] = true
			}
			return applyMutation(db, r.Store)
		case persist.RecData:
			if r.Data == nil {
				return fmt.Errorf("flowsched: record %d: empty data insert", r.Seq)
			}
			_, err := data.Put(r.Data.Class, r.Data.Bytes, r.Data.Producer, r.Data.Created)
			return err
		case persist.RecEvent:
			if r.Event == nil {
				return fmt.Errorf("flowsched: record %d: empty event", r.Seq)
			}
			events = append(events, *r.Event)
			return nil
		case persist.RecPlan:
			if r.Plan == nil {
				return fmt.Errorf("flowsched: record %d: empty plan record", r.Seq)
			}
			planVersion = r.Plan.Version
			return nil
		default:
			return fmt.Errorf("flowsched: record %d: unknown kind %q", r.Seq, r.Kind)
		}
	}); err != nil {
		return nil, nil, err
	}
	if opt.Calendar == nil {
		opt.Calendar = vclock.Standard()
	}
	m, err := engine.Restore(sch, opt.Calendar, db, data, now, man.Designer)
	if err != nil {
		return nil, nil, err
	}
	m.RestoreEvents(events)
	p := &Project{mgr: m, riskMemo: monte.NewMemo(0)}
	if opt.Obs.Enabled {
		p.enableObs(opt.Obs)
	}
	if planVersion > 0 {
		_, plan, err := m.Sched.PlanByVersion(planVersion)
		if err != nil {
			return nil, nil, fmt.Errorf("flowsched: recover plan: %w", err)
		}
		p.plan = plan
	}
	return p, covered, nil
}

// applyMutation replays one recorded store mutation and asserts the
// resulting version counter matches the one committed in the original
// process — the bit-identity check that catches any replay divergence at
// the exact record that introduced it.
func applyMutation(db *store.DB, m *store.Mutation) error {
	var err error
	switch m.Kind {
	case store.MutCreate:
		_, err = db.CreateContainer(m.Container, m.Space, m.Class)
	case store.MutPut:
		if m.Entry == nil {
			return fmt.Errorf("flowsched: put record without entry")
		}
		var payload any
		if m.Entry.Payload != nil {
			payload = m.Entry.Payload
		}
		_, err = db.Put(m.Entry.Container, m.Entry.Created, payload, m.Entry.Deps...)
	case store.MutPayload:
		err = db.SetPayload(m.ID, m.Payload)
	case store.MutLink:
		err = db.Link(m.A, m.B)
	case store.MutTouch:
		db.Touch()
	default:
		err = fmt.Errorf("flowsched: unknown mutation kind %q", m.Kind)
	}
	if err != nil {
		return err
	}
	if got := db.Version(); got != m.Version {
		return fmt.Errorf("flowsched: replay diverged: store at version %d, record %s committed at %d",
			got, m.Kind, m.Version)
	}
	return nil
}

// Durable reports whether the project persists its mutations to a
// write-ahead log (it was opened with Open).
func (p *Project) Durable() bool { return p.rec != nil }

// WALSeq returns the last durable record sequence number (0 on
// non-durable projects).
func (p *Project) WALSeq() uint64 {
	if p.rec == nil {
		return 0
	}
	return p.rec.log.Seq()
}

// Checkpoint captures the full project state — store (exact version and
// watermarks), design data, clock, tracked plan, event stream — and
// installs it atomically in the WAL, deleting the covered segments. The
// caller must guarantee no mutation is in flight (the facade's
// single-writer discipline; the host's per-project lock provides it when
// serving).
func (p *Project) Checkpoint() error {
	if p.rec == nil {
		return fmt.Errorf("flowsched: project is not durable")
	}
	if err := p.rec.Err(); err != nil {
		return &QuarantineError{Cause: err}
	}
	data, err := json.Marshal(p.mgr.Data)
	if err != nil {
		return err
	}
	cp := durableCheckpoint{
		Now: p.Now(), Store: p.mgr.DB.State(), Data: data, Events: p.mgr.Events(),
	}
	if p.plan != nil {
		cp.PlanVersion = p.plan.Version
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	if err := p.rec.log.WriteCheckpoint(b); err != nil {
		// A failed checkpoint poisons the log (sticky); quarantine the
		// project so writers learn immediately instead of at their next
		// append.
		p.rec.wedge(err)
		return &QuarantineError{Cause: err}
	}
	return nil
}

// commitDurable finishes one mutating facade operation on a durable
// project: it surfaces a wedged recorder and applies the auto-checkpoint
// policy. A no-op on non-durable projects.
func (p *Project) commitDurable() error {
	if p.rec == nil {
		return nil
	}
	if err := p.rec.Err(); err != nil {
		return &QuarantineError{Cause: err}
	}
	if p.checkpointEvery > 0 && p.rec.log.SinceCheckpoint() >= p.checkpointEvery {
		return p.Checkpoint()
	}
	return nil
}

// DurableFootprint reports the WAL's on-disk size in bytes.
func (p *Project) DurableFootprint() (int64, error) {
	if p.rec == nil {
		return 0, nil
	}
	return p.rec.log.FootprintBytes()
}

// MemoryFootprint estimates the project's resident size in bytes: design
// data content plus a per-instance estimate for the task database. The
// host registry's byte-budget LRU evicts against this estimate.
func (p *Project) MemoryFootprint() int64 {
	const perEntry = 512 // entry struct, ID strings, payload JSON
	_, execInst, _, schedInst := p.Stats()
	return int64(p.mgr.Data.TotalBytes()) + int64(execInst+schedInst)*perEntry
}

// Close checkpoints a durable project (bounding the next open's replay),
// detaches the change-feed hooks, and closes the WAL. A no-op on
// non-durable projects. The project must not be used afterwards.
func (p *Project) Close() error {
	if p.rec == nil {
		return nil
	}
	cpErr := p.Checkpoint()
	p.mgr.DB.SetCommitHook(nil)
	p.mgr.Data.SetPutHook(nil)
	p.mgr.SetEventHook(nil)
	if err := p.rec.log.Close(); err != nil {
		return err
	}
	return cpErr
}
