package flowsched

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"flowsched/internal/fault"
	"flowsched/internal/tools"
)

// deadTool fails every run — a tool whose installation is broken.
type deadTool struct{ class, instance string }

func (d deadTool) Instance() string { return d.instance }
func (d deadTool) Class() string    { return d.class }
func (d deadTool) Run(map[string][]byte, int) (tools.Result, error) {
	return tools.Result{Work: time.Hour}, fmt.Errorf("%s: broken installation", d.instance)
}

// TestRunWithCheckpointResume exercises the facade's recovery loop: a
// broken tool aborts the run with a typed ExecError, the tool is
// rebound, and Resume finishes the flow without re-running the
// completed prefix.
func TestRunWithCheckpointResume(t *testing.T) {
	p := prepared(t)
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.BindTool("Simulate", deadTool{class: "simulator", instance: "sim#dead"}); err != nil {
		t.Fatal(err)
	}

	_, err := p.RunWith([]string{"performance"}, RunOptions{AutoComplete: true, MaxFailures: 2})
	if err == nil {
		t.Fatal("run with a dead tool succeeded")
	}
	var afe *ActivityFailedError
	if !errors.As(err, &afe) || afe.Activity != "Simulate" {
		t.Fatalf("error is not a Simulate ActivityFailedError: %v", err)
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("error is not an ExecError: %v", err)
	}
	if done := ee.Completed(); len(done) != 1 || done[0] != "Create" {
		t.Fatalf("completed before failure = %v, want [Create]", done)
	}

	// Fix the installation and resume from the checkpoint.
	good, err := NewSimTool("simulator", "sim#good", ToolProfile{Base: 2 * time.Hour, MeanIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.BindTool("Simulate", good); err != nil {
		t.Fatal(err)
	}
	res, err := ee.Resume()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(res.Resumed) != 1 || res.Resumed[0] != "Create" {
		t.Fatalf("resumed (skipped) = %v, want [Create]", res.Resumed)
	}
	if len(res.Outcomes) != 1 || res.Outcomes[0].Activity != "Simulate" {
		t.Fatalf("resume outcomes = %+v, want just Simulate", res.Outcomes)
	}
}

// TestInjectFaultsFacade: an armed fault plan perturbs a full run, the
// replay log is visible, and the fault counters reach the project's
// metrics surface.
func TestInjectFaultsFacade(t *testing.T) {
	p, err := New(Fig4Schema, Options{Designer: "ewj", Obs: ObsOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFaults(FaultConfig{Seed: 10, Crash: 0.3, Corrupt: 0.3}); err != nil {
		t.Fatal(err)
	}
	if p.FaultHistory() != nil {
		t.Fatal("fault history non-empty before any run")
	}

	res, err := p.RunWith([]string{"performance"}, RunOptions{
		AutoComplete: true, MaxIterations: 30, MaxFailures: 5,
		Recovery: DefaultRecovery(),
	})
	if err != nil {
		t.Fatalf("recovered run failed: %v", err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(res.Outcomes))
	}
	if p.FaultsInjected() == 0 {
		t.Fatal("seed 10 at 30%/30% injected nothing")
	}
	if len(p.FaultHistory()) < p.FaultsInjected() {
		t.Fatal("history shorter than injected count")
	}
	// RunWith auto-installed the fault detector: accepted outputs are clean.
	for _, o := range res.Outcomes {
		rule := p.mgr.Schema.RuleByActivity(o.Activity)
		_, ent, err := p.mgr.Exec.LatestEntity(rule.Output)
		if err != nil || ent == nil {
			t.Fatalf("%s: no accepted entity: %v", o.Activity, err)
		}
		obj, err := p.mgr.Data.Get(ent.Data)
		if err != nil {
			t.Fatal(err)
		}
		if fault.Check(o.Activity, obj.Bytes) != nil {
			t.Fatalf("%s: corrupt output accepted", o.Activity)
		}
	}
	// The plan's counters reached the project metrics (summed over the
	// family's kind= series).
	var total float64
	for _, s := range p.Metrics() {
		if s.Name == "fault_injected_total" {
			total += s.Value
		}
	}
	if int(total) != p.FaultsInjected() {
		t.Fatalf("fault_injected_total = %v, want %d", total, p.FaultsInjected())
	}
}

// TestAddAlternateTool: alternates validate the activity, and the
// facade's what-if sweep accepts fault-injecting scenarios.
func TestAddAlternateTool(t *testing.T) {
	p := prepared(t)
	alt, err := NewSimTool("simulator", "sim#alt", ToolProfile{Base: time.Hour, MeanIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddAlternateTool("Route", alt); err == nil {
		t.Fatal("unknown activity accepted")
	}
	if err := p.AddAlternateTool("Simulate", alt); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Scenarios([]string{"performance"}, []ScenarioEdit{
		{Name: "chaotic", Faults: &FaultConfig{Seed: 3, Crash: 0.4, Corrupt: 0.2}},
	}, ScenarioOptions{Recovery: DefaultRecovery()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios[0].FaultsInjected == 0 {
		t.Fatal("what-if faults injected nothing")
	}
}
