package flowsched_test

import (
	"fmt"
	"log"
	"time"

	"flowsched"
)

// ExampleParseSchema parses the paper's Fig. 4 task schema from the
// construction-rule DSL.
func ExampleParseSchema() {
	sch, err := flowsched.ParseSchema(`
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("primary inputs: ", sch.PrimaryInputs())
	fmt.Println("primary outputs:", sch.PrimaryOutputs())
	fmt.Println(sch.Producer("performance"))
	// Output:
	// primary inputs:  [stimuli]
	// primary outputs: [performance]
	// rule Simulate: performance <- simulator(netlist, stimuli)
}

// ExampleProject_Plan derives a schedule by simulating the flow's
// execution (paper §III).
func ExampleProject_Plan() {
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{Designer: "ewj"})
	if err != nil {
		log.Fatal(err)
	}
	est := flowsched.Fixed{ByActivity: map[string]time.Duration{
		"Create":   16 * time.Hour,
		"Simulate": 8 * time.Hour,
	}}
	plan, err := p.Plan([]string{"performance"}, est, flowsched.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan v%d covers %v\n", plan.Version, plan.Activities)
	fmt.Printf("project finish: %s\n", plan.Finish.Format("Mon 2006-01-02 15:04"))
	// Output:
	// plan v1 covers [Create Simulate]
	// project finish: Wed 1995-06-07 17:00
}

// ExampleProject_Analyze computes the CPM critical path of a plan.
func ExampleProject_Analyze() {
	p, err := flowsched.New(flowsched.ASICSchema, flowsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	if _, err := p.Plan(targets, flowsched.Fixed{Default: 8 * time.Hour},
		flowsched.PlanOptions{}); err != nil {
		log.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("critical path:", res.CriticalPath)
	fmt.Println("span:", res.Duration)
	// Output:
	// critical path: [Synthesize Floorplan Route Extract STA]
	// span: 40h0m0s
}

// ExampleProject_Query shows §IV.B schedule-metadata queries: plan
// lineage after two planning passes.
func ExampleProject_Query() {
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	est := flowsched.Fixed{Default: 8 * time.Hour}
	if _, err := p.Plan([]string{"performance"}, est, flowsched.PlanOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, est, flowsched.PlanOptions{}); err != nil {
		log.Fatal(err)
	}
	ans, err := p.Query("lineage")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans)
	// Output:
	// plan lineage: schedule/1 -> schedule/2
}

// ExampleProject_DeadlineMargin checks a plan against a tape-out date.
func ExampleProject_DeadlineMargin() {
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"},
		flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
		log.Fatal(err)
	}
	deadline := time.Date(1995, time.June, 9, 17, 0, 0, 0, time.UTC) // Friday
	margin, err := p.DeadlineMargin(deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("margin before tape-out: %s of working time\n", margin)
	// Output:
	// margin before tape-out: 24h0m0s of working time
}
