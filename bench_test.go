// Benchmarks, one per exhibit of the paper (Table I, Figs. 1–8) plus the
// quantitative experiments E1–E5 of DESIGN.md. Each bench drives the same
// machinery the corresponding exhibit is generated from, so `go test
// -bench=.` doubles as a performance regression harness for the whole
// reproduction.
package flowsched

import (
	"fmt"
	"testing"
	"time"

	"flowsched/internal/arch"
	"flowsched/internal/baseline"
	"flowsched/internal/fourlevel"
	"flowsched/internal/gantt"
	"flowsched/internal/level"
	"flowsched/internal/pert"
	"flowsched/internal/predict"
	"flowsched/internal/report"
	"flowsched/internal/schema"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// BenchmarkTableI_AdapterConformance instantiates all six surveyed
// systems on the Fig. 4 schema and renders Table I.
func BenchmarkTableI_AdapterConformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		systems := fourlevel.AllSystems()
		for _, s := range systems {
			if err := s.Instantiate(workload.Fig4()); err != nil {
				b.Fatal(err)
			}
		}
		if out := fourlevel.TableI(systems); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1_PlanAndLink measures the full plan→execute→link cycle
// whose result Fig. 1 depicts.
func BenchmarkFig1_PlanAndLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := report.NewScenario()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_DatabaseInit measures task-database initialization from a
// schema (both Level 3 spaces).
func BenchmarkFig2_DatabaseInit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := New(Fig4Schema, Options{Designer: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

// BenchmarkFig3_MirrorSpaces measures the paired execution/schedule
// space population of the paper scenario.
func BenchmarkFig3_MirrorSpaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_SchemaParse measures parsing the construction-rule DSL.
func BenchmarkFig4_SchemaParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := schema.Parse(workload.Fig4Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_Planning measures schedule planning (simulated
// execution) on the paper scenario: two planning passes.
func BenchmarkFig5_Planning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.NewScenario(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_Execution measures flow execution with iteration (two
// runs per activity).
func BenchmarkFig6_Execution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := report.NewScenario()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_CompleteAndLink measures completion linking and slip
// propagation in isolation (plan + execute prepared outside the loop is
// impossible since completion mutates; re-measure the delta over Fig6 by
// comparison).
func BenchmarkFig7_CompleteAndLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_GanttRender measures Gantt rendering of a 20-task plan.
func BenchmarkFig8_GanttRender(b *testing.B) {
	cal := vclock.Standard()
	rows := make([]gantt.Row, 20)
	at := vclock.Epoch
	for i := range rows {
		fin := cal.AddWork(at, 8*time.Hour)
		rows[i] = gantt.Row{
			Name: "task" + string(rune('a'+i)), PlannedStart: at, PlannedFinish: fin,
			ActualStart: at, ActualFinish: fin, Done: i%2 == 0,
		}
		at = fin
	}
	c := &gantt.Chart{Title: "bench", Calendar: cal, Rows: rows, Now: at}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := c.Render(); len(out) == 0 {
			b.Fatal("empty chart")
		}
	}
}

// BenchmarkE1_TrackingDrift measures the integrated-vs-separate tracking
// comparison over a 200-event stream.
func BenchmarkE1_TrackingDrift(b *testing.B) {
	events := make([]baseline.Event, 200)
	at := vclock.Epoch
	for i := range events {
		kind := baseline.Start
		if i%2 == 1 {
			kind = baseline.Finish
		}
		events[i] = baseline.Event{Activity: "a", Kind: kind, At: at}
		at = at.Add(5 * time.Hour)
	}
	cfg := baseline.SeparateConfig{
		Period: 7 * 24 * time.Hour, FirstMeeting: vclock.Epoch.Add(48 * time.Hour),
		MissProb: 0.1, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Compare(events, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Prediction measures predictor evaluation over a 64-project
// history.
func BenchmarkE2_Prediction(b *testing.B) {
	samples := make([]predict.Sample, 64)
	for i := range samples {
		samples[i] = predict.Sample{
			Duration: time.Duration(20+i%7) * time.Hour,
			Size:     1 + float64(i)*0.05,
		}
	}
	preds := []predict.Predictor{predict.Mean{}, predict.EWMA{Alpha: 0.5}, predict.Regression{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range preds {
			if _, err := predict.Evaluate(p, samples, 4); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchScale plans and executes a layered flow of the given size.
func benchScale(b *testing.B, depth, width int, execute bool) {
	b.Helper()
	sch, err := workload.Layered(workload.LayeredConfig{
		Depth: depth, Width: width, FanIn: 2, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	est, err := workload.Estimates(sch, 8*time.Hour, 0.2, 5)
	if err != nil {
		b.Fatal(err)
	}
	targets := sch.PrimaryOutputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewFromSchema(sch, Options{Designer: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Plan(targets, est, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
		if !execute {
			continue
		}
		if err := p.UseSimulatedTools(); err != nil {
			b.Fatal(err)
		}
		for _, leaf := range sch.PrimaryInputs() {
			if _, err := p.Import(leaf, []byte("seed")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Run(targets, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_PlanScale sweeps planning over growing flows.
func BenchmarkE3_PlanScale_16(b *testing.B)  { benchScale(b, 4, 4, false) }
func BenchmarkE3_PlanScale_64(b *testing.B)  { benchScale(b, 8, 8, false) }
func BenchmarkE3_PlanScale_256(b *testing.B) { benchScale(b, 16, 16, false) }

// BenchmarkE3_ExecScale sweeps tracked execution over growing flows.
func BenchmarkE3_ExecScale_16(b *testing.B) { benchScale(b, 4, 4, true) }
func BenchmarkE3_ExecScale_64(b *testing.B) { benchScale(b, 8, 8, true) }

// BenchmarkE4_CriticalPath measures CPM analysis on a 256-activity network.
func BenchmarkE4_CriticalPath(b *testing.B) {
	sch, err := workload.Layered(workload.LayeredConfig{Depth: 16, Width: 16, FanIn: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	var acts []pert.Activity
	for _, r := range sch.Rules() {
		var preds []string
		for _, in := range r.Inputs {
			if p := sch.Producer(in); p != nil {
				preds = append(preds, p.Activity)
			}
		}
		acts = append(acts, pert.Activity{Name: r.Activity, Duration: 8 * time.Hour, Preds: preds})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := pert.NewNetwork(acts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_Query measures §IV.B query evaluation over a populated
// database.
func BenchmarkE5_Query(b *testing.B) {
	p, err := New(Fig4Schema, Options{Designer: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("v")); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		b.Fatal(err)
	}
	queries := []string{"duration of Create", "lineage", "load", "runs of Create"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := p.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation benches for DESIGN.md design choices -------------------------

// BenchmarkAblation_ResourceLeveling compares list scheduling across team
// sizes on a 64-activity flow (the cost of the optimization itself).
func BenchmarkAblation_ResourceLeveling(b *testing.B) {
	sch, err := workload.Layered(workload.LayeredConfig{Depth: 8, Width: 8, FanIn: 2, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	var tasks []level.Task
	for _, r := range sch.Rules() {
		var preds []string
		for _, in := range r.Inputs {
			if p := sch.Producer(in); p != nil {
				preds = append(preds, p.Activity)
			}
		}
		tasks = append(tasks, level.Task{Name: r.Activity, Duration: 8 * time.Hour, Preds: preds})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := level.MinimalTeam(tasks, 8, 1.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SnapshotRestore measures persisting and restoring a
// full executed session.
func BenchmarkAblation_SnapshotRestore(b *testing.B) {
	p, err := New(Fig4Schema, Options{Designer: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("v")); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Plan([]string{"performance"}, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := p.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Load(blob, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ArchRollup measures architectural plan + actual
// roll-up over a 3-level, 64-leaf decomposition.
func BenchmarkAblation_ArchRollup(b *testing.B) {
	root := &arch.Block{Name: "chip"}
	for u := 0; u < 8; u++ {
		unit := &arch.Block{Name: fmt.Sprintf("u%d", u)}
		for l := 0; l < 8; l++ {
			unit.Children = append(unit.Children,
				&arch.Block{Name: fmt.Sprintf("u%db%d", u, l), Size: 1000})
		}
		root.Children = append(root.Children, unit)
	}
	d, err := arch.NewDecomposition(root)
	if err != nil {
		b.Fatal(err)
	}
	plan := func(block string, size float64) (time.Time, time.Time, error) {
		return vclock.Epoch, vclock.Epoch.Add(24 * time.Hour), nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := d.Plan(plan)
		if err != nil {
			b.Fatal(err)
		}
		for _, leaf := range d.Leaves() {
			if err := s.RecordActual(leaf.Name, vclock.Epoch,
				vclock.Epoch.Add(30*time.Hour), true); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRisk measures a 1000-trial Monte-Carlo risk analysis over the
// Fig. 4 flow with default tool profiles at a fixed worker count.
// With instrumented, the project carries the full observability layer
// (metrics + tracing), measuring its overhead on the risk path.
func benchRisk(b *testing.B, workers int, instrumented bool) {
	b.Helper()
	p, err := New(Fig4Schema, Options{
		Designer: "bench",
		Obs:      ObsOptions{Enabled: instrumented},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		b.Fatal(err)
	}
	opt := RiskOptions{Trials: 1000, Seed: 7, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SimulateRiskWith([]string{"performance"}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_RiskSimulation is the serial (1-worker) risk engine;
// BenchmarkE6_RiskSimulation_Parallel runs the same sharded engine on
// all cores and must return bit-identical results (see
// internal/monte's equivalence test). cmd/benchrisk records the
// serial/parallel trials sweep into BENCH_risk.json.
// BenchmarkE6_RiskSimulation_Instrumented is the same serial run with
// the observability layer enabled; the overhead budget is <5% (see
// BENCH_obs.json, recorded by cmd/benchrisk -obs).
func BenchmarkE6_RiskSimulation(b *testing.B)              { benchRisk(b, 1, false) }
func BenchmarkE6_RiskSimulation_Parallel(b *testing.B)     { benchRisk(b, 0, false) }
func BenchmarkE6_RiskSimulation_Instrumented(b *testing.B) { benchRisk(b, 1, true) }

// benchExecMode measures tracked ASIC execution under one timeline mode.
func benchExecMode(b *testing.B, parallel bool) {
	b.Helper()
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	for i := 0; i < b.N; i++ {
		p, err := New(ASICSchema, Options{Designer: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.UseSimulatedTools(); err != nil {
			b.Fatal(err)
		}
		for _, leaf := range []string{"rtl", "constraints", "testbench"} {
			if _, err := p.Import(leaf, []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Plan(targets, Fixed{Default: 8 * time.Hour}, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
		var execErr error
		if parallel {
			_, execErr = p.RunParallel(targets, true)
		} else {
			_, execErr = p.Run(targets, true)
		}
		if execErr != nil {
			b.Fatal(execErr)
		}
	}
}

// BenchmarkAblation_ExecSerial / _ExecParallel compare the two execution
// timeline models on the ASIC flow (the compute cost is similar; the
// virtual-time spans differ — see engine's parallel tests).
func BenchmarkAblation_ExecSerial(b *testing.B)   { benchExecMode(b, false) }
func BenchmarkAblation_ExecParallel(b *testing.B) { benchExecMode(b, true) }
