package flowsched

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/monte"
	"flowsched/internal/obs"
	"flowsched/internal/query"
	"flowsched/internal/report"
	"flowsched/internal/scenario"
	"flowsched/internal/store"
	"flowsched/internal/tools"
)

// ProjectView is a read-only facade pinned to one snapshot of the task
// database: every method answers from the same moment, so a set of
// reads taken through one view is mutually consistent even while the
// project keeps planning and executing on other goroutines. Views are
// cheap (O(containers), no entry copying) and safe for concurrent use;
// take a fresh one whenever "now" should advance.
//
// The view decodes the tracked plan from the snapshot rather than
// sharing the project's live plan pointer — slip propagation mutates
// the live plan in place, and a view must never observe that.
type ProjectView struct {
	m    *engine.Manager
	view *store.View
	plan *Plan // decoded from the snapshot; nil before first Plan
	now  time.Time
	obs  *obs.Obs
	memo *monte.Memo     // the project's shared trial-stream memo
	span *obs.Span       // request root for CaptureTrace'd views; else nil
	ctx  context.Context // cancellation for compute surfaces; nil = never canceled
}

// WithContext returns a copy of the view whose compute surfaces
// (SimulateRiskWith, Scenarios) cancel cooperatively when ctx is done —
// the bridge that lets a serving layer stop a simulation the moment its
// client disconnects or its deadline passes. Cancellation never
// perturbs results: an uncancelled run is bit-identical with or without
// a context. A nil ctx returns the view unchanged; the original view is
// not modified.
func (v *ProjectView) WithContext(ctx context.Context) *ProjectView {
	if ctx == nil {
		return v
	}
	c := *v
	c.ctx = ctx
	return &c
}

// CaptureTrace returns a copy of the view whose span output is
// diverted to tr, nested under parent: risk simulations, what-if
// sweeps, and their engine/monte descendants run through the copy
// record their spans on tr (a request-scoped tracer) instead of the
// project's own, while metric counters keep flowing to the project
// registry. A nil tr returns the view unchanged. The original view is
// not modified.
func (v *ProjectView) CaptureTrace(tr *obs.Tracer, parent *obs.Span) *ProjectView {
	if tr == nil {
		return v
	}
	c := *v
	c.obs = obs.NewWith(v.obs.Metrics(), tr)
	c.span = parent
	return &c
}

// View captures the project's current state as a consistent read-only
// view: one store snapshot, the plan as recorded in that snapshot, and
// the virtual now at capture time.
func (p *Project) View() (*ProjectView, error) {
	v := p.mgr.DB.Snapshot()
	m := p.mgr.AtView(v)
	_, plan, err := m.Sched.CurrentPlan()
	if err != nil {
		return nil, fmt.Errorf("flowsched: view: %w", err)
	}
	return &ProjectView{m: m, view: v, plan: plan, now: m.Clock.Now(), obs: p.obs, memo: p.riskMemo}, nil
}

// Version is the store snapshot version the view is pinned to. It
// increases with every task-database mutation, so two views with equal
// versions observed the identical Level 3 state.
func (v *ProjectView) Version() uint64 { return v.view.Version() }

// Version is the project's current store version — the same number a
// concurrent View (and every HTTP response's X-Flowsched-Version
// header) reports. The HTTP write path compares it against If-Match
// for optimistic concurrency: a client edits against the version it
// read, and a mismatch at write time means someone else got there
// first.
func (p *Project) Version() uint64 { return p.mgr.DB.Version() }

// Now is the virtual time captured with the snapshot.
func (v *ProjectView) Now() time.Time { return v.now }

// HasPlan reports whether the snapshot contains a tracked plan.
func (v *ProjectView) HasPlan() bool { return v.plan != nil }

// PlanVersion is the snapshot's tracked plan version (0 before planning).
func (v *ProjectView) PlanVersion() int {
	if v.plan == nil {
		return 0
	}
	return v.plan.Version
}

// Targets returns the snapshot plan's target data classes (nil before
// planning). The slice is a copy.
func (v *ProjectView) Targets() []string {
	if v.plan == nil {
		return nil
	}
	return append([]string(nil), v.plan.Targets...)
}

// needPlan guards the plan-scoped read surfaces.
func (v *ProjectView) needPlan() error {
	if v.plan == nil {
		return fmt.Errorf("flowsched: no plan in snapshot")
	}
	return nil
}

// Status reports plan-versus-actual state per activity as captured.
func (v *ProjectView) Status() ([]ActivityStatus, error) {
	if err := v.needPlan(); err != nil {
		return nil, err
	}
	return statusOf(v.m, v.plan, v.now)
}

// Gantt renders the snapshot plan's Gantt chart.
func (v *ProjectView) Gantt() (string, error) {
	if err := v.needPlan(); err != nil {
		return "", err
	}
	return report.Chart(v.m, v.plan, v.now)
}

// TaskTreeView renders the task tree with per-node schedule state.
func (v *ProjectView) TaskTreeView(targets ...string) (string, error) {
	tree, err := v.m.ExtractTree(targets...)
	if err != nil {
		return "", err
	}
	return report.TaskTree(v.m, tree, v.plan), nil
}

// Dashboard renders the one-page project view from the snapshot.
func (v *ProjectView) Dashboard() (string, error) {
	if err := v.needPlan(); err != nil {
		return "", err
	}
	return dashboardOf(v.m, v.plan, v.now)
}

// Analyze runs CPM/PERT over the snapshot plan.
func (v *ProjectView) Analyze() (*CPMResult, error) {
	if err := v.needPlan(); err != nil {
		return nil, err
	}
	return analyzeOf(v.m, v.plan)
}

// Query answers a textual §IV.B query against the snapshot.
func (v *ProjectView) Query(text string) (string, error) {
	eng, err := query.New(v.m.Sched, v.m.Exec)
	if err != nil {
		return "", err
	}
	return eng.Eval(text)
}

// MilestoneReport scores the snapshot plan's milestones.
func (v *ProjectView) MilestoneReport() ([]MilestoneStatus, error) {
	if err := v.needPlan(); err != nil {
		return nil, err
	}
	return v.m.Sched.MilestoneReport(v.plan)
}

// StatusReport renders the periodic manager's report for [from, to)
// against the snapshot.
func (v *ProjectView) StatusReport(from, to time.Time) (string, error) {
	return report.StatusReport(v.m, v.plan, from, to)
}

// SimulateRiskWith runs a Monte-Carlo schedule risk analysis from the
// snapshot's virtual now. The stochastic model is derived from the live
// tool bindings (tools are session configuration, not Level 3 state).
// The run shares the project's subtree trial-stream memo unless
// opt.NoReuse is set; reuse never changes the result.
func (v *ProjectView) SimulateRiskWith(targets []string, opt RiskOptions) (*RiskResult, error) {
	return riskOf(v.ctx, v.m, v.obs, v.now, v.memo, v.span, targets, opt)
}

// RiskFingerprint is the view-pinned Project.RiskFingerprint: a
// canonical hash of everything the risk distribution depends on. Equal
// fingerprints across different snapshots mean SimulateRiskWith returns
// bit-identical results from both — the store version and virtual clock
// are deliberately *not* part of the fingerprint, because a risk run's
// distribution depends only on the derived models and the sampling
// configuration.
func (v *ProjectView) RiskFingerprint(targets []string, opt RiskOptions) (string, error) {
	return riskFingerprintOf(v.m, targets, opt)
}

// WhatIfFingerprint is a canonical hash of everything a Scenarios sweep
// with these arguments depends on: the sweep configuration (targets,
// canonical edits, recovery policy, risk spec), the derived flow
// structure with every bound tool's class/instance/profile chain, the
// virtual now and plan version, and — from the snapshot — the
// watermarks of every schedule-space container plus the
// execution-space containers of the data classes inside the target
// tree. Store writes outside that closure (an import of an unrelated
// data class) leave the fingerprint unchanged, so equal fingerprints
// across different store versions mean Scenarios renders bit-identical
// reports from both.
//
// Sweeps whose behaviour cannot be captured by hashing refuse a
// fingerprint with an error: custom estimators, recovery verifiers,
// non-simulated tools, and edits that arm fault injection (fault plans
// carry arbitrary configuration and per-fork mutable state). Callers
// must treat an error as "do not reuse", never as a failure of the
// sweep itself.
func (v *ProjectView) WhatIfFingerprint(targets []string, edits []ScenarioEdit, opt ScenarioOptions) (string, error) {
	if opt.Estimator != nil {
		return "", fmt.Errorf("flowsched: whatif fingerprint: custom estimators are not fingerprintable")
	}
	if opt.Recovery.Verify != nil {
		return "", fmt.Errorf("flowsched: whatif fingerprint: recovery verifiers are not fingerprintable")
	}
	for _, e := range edits {
		if e.Faults != nil {
			return "", fmt.Errorf("flowsched: whatif fingerprint: fault-injection edits are not fingerprintable")
		}
	}
	tree, err := v.m.ExtractTree(targets...)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "whatif.v1|designer=%s|now=%d|planv=%d\n", v.m.Designer, v.now.UnixNano(), v.PlanVersion())
	for _, tgt := range targets {
		fmt.Fprintf(h, "target=%s\n", tgt)
	}
	fmt.Fprintf(h, "recovery=%+v|%d|%t|%t\n",
		opt.Recovery.Backoff, opt.Recovery.RunDeadline, opt.Recovery.Failover, opt.Recovery.ContinueOnBlock)
	if opt.Risk != nil {
		fmt.Fprintf(h, "risk=%d|%d|%t|%d\n", opt.Risk.Trials, opt.Risk.Seed, opt.Risk.Sketch, monte.SketchVersion)
	}
	for _, e := range edits {
		fmt.Fprintf(h, "edit=%s|parallel=%t\n", e.Name, e.Parallel)
		for _, k := range sortedKeys(e.Scale) {
			fmt.Fprintf(h, "scale:%s=%g\n", k, e.Scale[k])
		}
		for _, k := range sortedKeys(e.Delay) {
			fmt.Fprintf(h, "delay:%s=%d\n", k, e.Delay[k])
		}
	}
	// Flow structure and tool bindings: every activity in post order with
	// its full rotation chain of simulated-tool profiles. The data
	// classes collected here bound the store closure hashed below.
	classes := make(map[string]bool)
	for _, c := range tree.Leaves() {
		classes[c] = true
	}
	for _, a := range tree.Activities() {
		if rule := v.m.Schema.RuleByActivity(a); rule != nil {
			classes[rule.Output] = true
		}
		fmt.Fprintf(h, "act=%s", a)
		for _, tl := range v.m.Tools.Bound(a) {
			st, ok := tl.(*tools.SimTool)
			if !ok {
				return "", fmt.Errorf("flowsched: whatif fingerprint: tool %s on %s is not a simulated tool",
					tl.Instance(), a)
			}
			p := st.Profile()
			fmt.Fprintf(h, "|tool=%s/%s:%d,%g,%g,%g",
				tl.Class(), tl.Instance(), p.Base, p.Jitter, p.MeanIterations, p.FailureRate)
		}
		fmt.Fprintln(h)
	}
	// Snapshot closure: schedule-space containers (plans, schedule
	// history, milestones) plus execution-space containers whose class
	// is inside the tree. A container's watermark is the store version
	// at its last mutation, so any relevant write changes the hash.
	var names []string
	byName := make(map[string]*store.Container)
	for _, c := range v.view.Containers() {
		if c.Space == store.ScheduleSpace || classes[c.Class] {
			names = append(names, c.Name)
			byName[c.Name] = c
		}
	}
	sort.Strings(names)
	for _, n := range names {
		c := byName[n]
		fmt.Fprintf(h, "container=%s|%s|%s|w%d|n%d\n", c.Name, c.Space, c.Class, c.Watermark(), len(c.Entries))
	}
	return fmt.Sprintf("whatif.%016x", h.Sum64()), nil
}

// sortedKeys returns m's keys in sorted order for canonical hashing.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Scenarios runs a what-if sweep with every fork pinned to the view's
// snapshot, so the sweep compares scenarios against one observed moment
// even while the project keeps executing.
func (v *ProjectView) Scenarios(targets []string, edits []ScenarioEdit, opt ScenarioOptions) (*ScenarioReport, error) {
	if opt.Obs == nil {
		opt.Obs = v.obs
	}
	if opt.Parent == nil {
		opt.Parent = v.span
	}
	opt.BaseView = v.view
	if opt.Ctx == nil {
		opt.Ctx = v.ctx
	}
	if opt.Risk != nil && opt.Risk.Memo == nil {
		spec := *opt.Risk
		spec.Memo = v.memo
		opt.Risk = &spec
	}
	return scenario.Sweep(v.m, targets, edits, opt)
}

// PredictDuration estimates an activity's next duration from the
// snapshot's completed schedule history.
func (v *ProjectView) PredictDuration(activity string, opt PredictOptions) (*Prediction, error) {
	return predictOf(v.m, activity, opt)
}

// EvaluatePredictor back-tests a predictor over the snapshot's history.
func (v *ProjectView) EvaluatePredictor(activity string, opt PredictOptions, warmup int) (PredictorAccuracy, error) {
	return evaluateOf(v.m, activity, opt, warmup)
}
