package flowsched

import (
	"fmt"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/obs"
	"flowsched/internal/query"
	"flowsched/internal/report"
	"flowsched/internal/scenario"
	"flowsched/internal/store"
)

// ProjectView is a read-only facade pinned to one snapshot of the task
// database: every method answers from the same moment, so a set of
// reads taken through one view is mutually consistent even while the
// project keeps planning and executing on other goroutines. Views are
// cheap (O(containers), no entry copying) and safe for concurrent use;
// take a fresh one whenever "now" should advance.
//
// The view decodes the tracked plan from the snapshot rather than
// sharing the project's live plan pointer — slip propagation mutates
// the live plan in place, and a view must never observe that.
type ProjectView struct {
	m    *engine.Manager
	view *store.View
	plan *Plan // decoded from the snapshot; nil before first Plan
	now  time.Time
	obs  *obs.Obs
}

// View captures the project's current state as a consistent read-only
// view: one store snapshot, the plan as recorded in that snapshot, and
// the virtual now at capture time.
func (p *Project) View() (*ProjectView, error) {
	v := p.mgr.DB.Snapshot()
	m := p.mgr.AtView(v)
	_, plan, err := m.Sched.CurrentPlan()
	if err != nil {
		return nil, fmt.Errorf("flowsched: view: %w", err)
	}
	return &ProjectView{m: m, view: v, plan: plan, now: m.Clock.Now(), obs: p.obs}, nil
}

// Version is the store snapshot version the view is pinned to. It
// increases with every task-database mutation, so two views with equal
// versions observed the identical Level 3 state.
func (v *ProjectView) Version() uint64 { return v.view.Version() }

// Now is the virtual time captured with the snapshot.
func (v *ProjectView) Now() time.Time { return v.now }

// HasPlan reports whether the snapshot contains a tracked plan.
func (v *ProjectView) HasPlan() bool { return v.plan != nil }

// PlanVersion is the snapshot's tracked plan version (0 before planning).
func (v *ProjectView) PlanVersion() int {
	if v.plan == nil {
		return 0
	}
	return v.plan.Version
}

// Targets returns the snapshot plan's target data classes (nil before
// planning). The slice is a copy.
func (v *ProjectView) Targets() []string {
	if v.plan == nil {
		return nil
	}
	return append([]string(nil), v.plan.Targets...)
}

// needPlan guards the plan-scoped read surfaces.
func (v *ProjectView) needPlan() error {
	if v.plan == nil {
		return fmt.Errorf("flowsched: no plan in snapshot")
	}
	return nil
}

// Status reports plan-versus-actual state per activity as captured.
func (v *ProjectView) Status() ([]ActivityStatus, error) {
	if err := v.needPlan(); err != nil {
		return nil, err
	}
	return statusOf(v.m, v.plan, v.now)
}

// Gantt renders the snapshot plan's Gantt chart.
func (v *ProjectView) Gantt() (string, error) {
	if err := v.needPlan(); err != nil {
		return "", err
	}
	return report.Chart(v.m, v.plan, v.now)
}

// TaskTreeView renders the task tree with per-node schedule state.
func (v *ProjectView) TaskTreeView(targets ...string) (string, error) {
	tree, err := v.m.ExtractTree(targets...)
	if err != nil {
		return "", err
	}
	return report.TaskTree(v.m, tree, v.plan), nil
}

// Dashboard renders the one-page project view from the snapshot.
func (v *ProjectView) Dashboard() (string, error) {
	if err := v.needPlan(); err != nil {
		return "", err
	}
	return dashboardOf(v.m, v.plan, v.now)
}

// Analyze runs CPM/PERT over the snapshot plan.
func (v *ProjectView) Analyze() (*CPMResult, error) {
	if err := v.needPlan(); err != nil {
		return nil, err
	}
	return analyzeOf(v.m, v.plan)
}

// Query answers a textual §IV.B query against the snapshot.
func (v *ProjectView) Query(text string) (string, error) {
	eng, err := query.New(v.m.Sched, v.m.Exec)
	if err != nil {
		return "", err
	}
	return eng.Eval(text)
}

// MilestoneReport scores the snapshot plan's milestones.
func (v *ProjectView) MilestoneReport() ([]MilestoneStatus, error) {
	if err := v.needPlan(); err != nil {
		return nil, err
	}
	return v.m.Sched.MilestoneReport(v.plan)
}

// StatusReport renders the periodic manager's report for [from, to)
// against the snapshot.
func (v *ProjectView) StatusReport(from, to time.Time) (string, error) {
	return report.StatusReport(v.m, v.plan, from, to)
}

// SimulateRiskWith runs a Monte-Carlo schedule risk analysis from the
// snapshot's virtual now. The stochastic model is derived from the live
// tool bindings (tools are session configuration, not Level 3 state).
func (v *ProjectView) SimulateRiskWith(targets []string, opt RiskOptions) (*RiskResult, error) {
	return riskOf(v.m, v.obs, v.now, targets, opt)
}

// Scenarios runs a what-if sweep with every fork pinned to the view's
// snapshot, so the sweep compares scenarios against one observed moment
// even while the project keeps executing.
func (v *ProjectView) Scenarios(targets []string, edits []ScenarioEdit, opt ScenarioOptions) (*ScenarioReport, error) {
	if opt.Obs == nil {
		opt.Obs = v.obs
	}
	opt.BaseView = v.view
	return scenario.Sweep(v.m, targets, edits, opt)
}

// PredictDuration estimates an activity's next duration from the
// snapshot's completed schedule history.
func (v *ProjectView) PredictDuration(activity string, opt PredictOptions) (*Prediction, error) {
	return predictOf(v.m, activity, opt)
}

// EvaluatePredictor back-tests a predictor over the snapshot's history.
func (v *ProjectView) EvaluatePredictor(activity string, opt PredictOptions, warmup int) (PredictorAccuracy, error) {
	return evaluateOf(v.m, activity, opt, warmup)
}
