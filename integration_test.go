package flowsched

import (
	"strings"
	"testing"
	"time"
)

// TestFullProjectLifecycle drives one ASIC project through every major
// capability in sequence — the scenario a real adopter would run:
//
//  1. schema + tools + imports
//  2. plan v1 (intuition estimates) + milestone + risk analysis
//  3. execute tracked; slips propagate
//  4. replan v2 from measured history (lineage recorded)
//  5. status, dashboard, outline, queries, CPM
//  6. export, snapshot, restore, and continue in the restored session
func TestFullProjectLifecycle(t *testing.T) {
	p, err := New(ASICSchema, Options{Designer: "lead"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	for class, content := range map[string]string{
		"rtl":         "module top; endmodule",
		"constraints": "create_clock -period 10",
		"testbench":   "initial begin end",
	} {
		if _, err := p.Import(class, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}

	// --- plan v1 + milestone + risk -----------------------------------
	est := Fixed{Default: 10 * time.Hour}
	plan1, err := p.Plan(targets, est, PlanOptions{
		Assignments: map[string][]string{"Route": {"bob"}, "Synthesize": {"ann"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tapeout := plan1.Finish.Add(14 * 24 * time.Hour)
	if err := p.SetMilestone("tapeout-model", "layout", tapeout); err != nil {
		t.Fatal(err)
	}
	risk, err := p.SimulateRisk(targets, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if risk.Percentile(0.9) <= risk.Percentile(0.1) {
		t.Fatal("risk distribution degenerate")
	}

	// --- execute tracked -----------------------------------------------
	res, err := p.Run(targets, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 8 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	// The milestone must be achieved (layout produced) with real margin
	// against the generous target.
	ms, err := p.MilestoneReport()
	if err != nil || len(ms) != 1 || !ms[0].Achieved || ms[0].Margin <= 0 {
		t.Fatalf("milestones = %+v, %v", ms, err)
	}

	// --- replan from history -------------------------------------------
	plan2, err := p.Plan(targets, p.HistoricalEstimator(est), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Version != 2 {
		t.Fatalf("plan version = %d", plan2.Version)
	}
	lineage, err := p.Query("lineage")
	if err != nil || !strings.Contains(lineage, "schedule/1 -> schedule/2") {
		t.Fatalf("lineage = %q, %v", lineage, err)
	}
	// Historical estimates recorded as such.
	estAns, err := p.Query("estimate of Route")
	if err != nil || !strings.Contains(estAns, "historical") {
		t.Fatalf("estimate = %q, %v", estAns, err)
	}

	// --- views -----------------------------------------------------------
	g, err := NewGrouping(map[string][]string{
		"Frontend": {"Synthesize", "GateSim"},
		"Backend":  {"Floorplan", "Route", "Extract"},
		"Signoff":  {"DRC", "LVS", "STA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	outline, err := p.OutlineStatus(g)
	if err != nil || !strings.Contains(outline, "Backend") {
		t.Fatalf("outline = %q, %v", outline, err)
	}
	cpm, err := p.Analyze()
	if err != nil || len(cpm.CriticalPath) == 0 {
		t.Fatalf("cpm = %+v, %v", cpm, err)
	}
	// plan2 has no actuals yet: dashboard shows 0 done.
	dash, err := p.Dashboard()
	if err != nil || !strings.Contains(dash, "progress: 0/8") {
		t.Fatalf("dashboard = %v\n%s", err, dash)
	}

	// --- interchange + persistence --------------------------------------
	csvOut, err := p.ExportPlanCSV()
	if err != nil || strings.Count(csvOut, "\n") != 9 { // header + 8 rows
		t.Fatalf("csv lines = %d, %v", strings.Count(csvOut, "\n"), err)
	}
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	re, err := Load(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.CurrentPlan() == nil || re.CurrentPlan().Version != 2 {
		t.Fatalf("restored plan = %+v", re.CurrentPlan())
	}
	// The restored session continues: execute plan v2 tracked.
	if err := re.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run(targets, true); err != nil {
		t.Fatal(err)
	}
	st, err := re.Status()
	if err != nil {
		t.Fatal(err)
	}
	doneCount := 0
	for _, row := range st {
		if row.State == "done" {
			doneCount++
		}
	}
	if doneCount != 8 {
		t.Fatalf("restored execution completed %d/8", doneCount)
	}
	// Database ends with two plans, 16 completed schedule instances
	// across both plan versions, and links everywhere.
	_, _, _, schedInstances := re.Stats()
	if schedInstances < 16 {
		t.Fatalf("schedule instances = %d", schedInstances)
	}
}
